// Package registry generalizes the serving stack from "one server = one
// graph" to named graph spaces: a concurrency-safe Registry maps tenant
// names to per-graph view.Publisher instances with lifecycle
// (create/get/list/delete), per-graph resource quotas enforced at the
// write funnel, a global cap on the number of hosted graphs, and a
// per-graph change feed that turns each snapshot publication into κ
// promotion/demotion and template-pattern events (see feed.go).
//
// A Space is one hosted graph: its Publisher (the single-writer snapshot
// pipeline of internal/view), its bookmark slot (the POST /snapshot
// surface, now per graph), its Feed, and its quota configuration. All
// mutations go through Space.Apply, which checks quotas against the live
// engine under the writer lock — a rejected batch provably mutates
// nothing — and hands every effective publication to the feed as a
// (previous, current) snapshot pair.
//
// Per-graph metrics land on the shared obs registry under a `graph`
// label whose distinct-value set is bounded by an obs.LabelCap: the
// first MaxGraphLabels names keep their own series, later ones share the
// "_other" overflow bucket, so a tenant churning through graph names
// cannot grow the /metrics exposition without limit.
package registry

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"

	"trikcore/internal/dynamic"
	"trikcore/internal/graph"
	"trikcore/internal/obs"
	"trikcore/internal/obs/trace"
	"trikcore/internal/view"
	"trikcore/internal/watchdog"
)

// DefaultGraph is the space the legacy unprefixed HTTP routes alias, so
// a pre-tenancy client keeps talking to the same graph it always did.
const DefaultGraph = "default"

// Lifecycle and naming errors. Create/Delete return these wrapped with
// the offending name; match with errors.Is.
var (
	ErrExists       = errors.New("graph already exists")
	ErrNotFound     = errors.New("graph not found")
	ErrInvalidName  = errors.New("invalid graph name")
	ErrRegistryFull = errors.New("graph limit reached")
	ErrClosed       = errors.New("registry closed")
)

// nameRe admits DNS-label-like graph names: leading alphanumeric, then
// alphanumerics, dot, underscore or dash, at most 64 runes. The leading
// alphanumeric keeps every valid name distinct from the obs.Overflow
// bucket ("_other") by construction.
var nameRe = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// ValidName reports whether name is an acceptable graph name.
func ValidName(name string) bool { return nameRe.MatchString(name) }

// Quotas bound one graph space. Zero fields are unlimited.
type Quotas struct {
	// MaxVertices and MaxEdges cap the graph size after a batch; a batch
	// that would exceed either is rejected atomically (nothing applied).
	MaxVertices int
	MaxEdges    int
	// MaxBodyBytes caps one HTTP write body. It is enforced at the HTTP
	// funnel (http.MaxBytesReader), not here; the registry only carries
	// the configured value to the handler layer.
	MaxBodyBytes int64
}

// QuotaError reports a rejected batch: applying it would have driven
// Resource from Have to Want, past Limit. The server layer maps it to a
// structured 429.
type QuotaError struct {
	Resource string // "vertices" or "edges"
	Limit    int
	Have     int
	Want     int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("quota exceeded: batch would grow %s from %d to %d, limit %d",
		e.Resource, e.Have, e.Want, e.Limit)
}

// Config parameterizes a Registry. The zero value hosts up to
// DefaultMaxGraphs unquoted graphs with serial write application and no
// instrumentation.
type Config struct {
	// MaxGraphs caps how many spaces may exist at once (0 = DefaultMaxGraphs,
	// negative = unlimited).
	MaxGraphs int
	// Quotas apply to every space the registry creates.
	Quotas Quotas
	// Workers > 1 routes each space's batches through the engine's
	// parallel apply path with that worker count (snapshots are
	// byte-identical at any setting).
	Workers int
	// Registry, when non-nil, receives per-graph metrics under a bounded
	// `graph` label.
	Registry *obs.Registry
	// MaxGraphLabels bounds the distinct `graph` label values
	// (0 = DefaultMaxGraphLabels); later names share obs.Overflow.
	MaxGraphLabels int
	// FeedCapacity is each space's event ring size
	// (0 = DefaultFeedCapacity); subscribers more than this many events
	// behind a resume point lose the evicted prefix.
	FeedCapacity int
}

// Config defaults.
const (
	DefaultMaxGraphs      = 64
	DefaultMaxGraphLabels = 32
	DefaultFeedCapacity   = 1024
)

// Registry is the concurrency-safe name → Space map. The zero value is
// not usable; call New.
type Registry struct {
	mu     sync.Mutex
	cfg    Config
	spaces map[string]*Space // trikcheck:guardedby mu
	closed bool              // trikcheck:guardedby mu

	labelCap *obs.LabelCap
	graphs   *obs.Gauge // current space count
	created  *obs.Counter
	deleted  *obs.Counter
}

// New builds an empty registry. Callers that want the legacy-compatible
// layout create the DefaultGraph space themselves (see server.NewWith).
func New(cfg Config) *Registry {
	if cfg.MaxGraphs == 0 {
		cfg.MaxGraphs = DefaultMaxGraphs
	}
	if cfg.MaxGraphLabels == 0 {
		cfg.MaxGraphLabels = DefaultMaxGraphLabels
	}
	if cfg.FeedCapacity == 0 {
		cfg.FeedCapacity = DefaultFeedCapacity
	}
	r := &Registry{cfg: cfg, spaces: make(map[string]*Space)}
	if cfg.Registry != nil {
		r.labelCap = obs.NewLabelCap(cfg.MaxGraphLabels)
		r.graphs = cfg.Registry.Gauge("trikcore_registry_graphs",
			"Graph spaces currently hosted.", nil)
		r.created = cfg.Registry.Counter("trikcore_registry_graphs_created_total",
			"Graph spaces created over the registry's lifetime.", nil)
		r.deleted = cfg.Registry.Counter("trikcore_registry_graphs_deleted_total",
			"Graph spaces deleted over the registry's lifetime.", nil)
	}
	return r
}

// Quotas returns the per-graph quota configuration.
func (r *Registry) Quotas() Quotas { return r.cfg.Quotas }

// Create builds a new space named name over a copy of g (nil for an
// empty graph), running the initial decomposition, and registers it.
func (r *Registry) Create(name string, g *graph.Graph) (*Space, error) {
	if g == nil {
		g = graph.New()
	}
	if !ValidName(name) {
		return nil, fmt.Errorf("%w: %q", ErrInvalidName, name)
	}
	// Reserve the slot before the (possibly expensive) decomposition so
	// two racing creates of one name cannot both pay for it; the loser
	// fails fast on the reservation.
	if err := r.reserve(name); err != nil {
		return nil, err
	}
	if q := r.cfg.Quotas; q.MaxEdges > 0 && g.NumEdges() > q.MaxEdges {
		r.unreserve(name)
		return nil, &QuotaError{Resource: "edges", Limit: q.MaxEdges, Want: g.NumEdges()}
	} else if q.MaxVertices > 0 && g.NumVertices() > q.MaxVertices {
		r.unreserve(name)
		return nil, &QuotaError{Resource: "vertices", Limit: q.MaxVertices, Want: g.NumVertices()}
	}
	sp := r.newSpace(name, view.NewPublisherFromGraph(g))
	r.commit(name, sp)
	return sp, nil
}

// Adopt registers a space over an already-built publisher — the path the
// server uses for its instrumented default graph. The caller must not
// mutate the publisher's engine directly afterwards.
func (r *Registry) Adopt(name string, pub *view.Publisher) (*Space, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("%w: %q", ErrInvalidName, name)
	}
	if err := r.reserve(name); err != nil {
		return nil, err
	}
	sp := r.newSpace(name, pub)
	r.commit(name, sp)
	return sp, nil
}

// reserve claims name under the lock, leaving a nil placeholder so the
// count and uniqueness checks see it.
func (r *Registry) reserve(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if _, ok := r.spaces[name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	if r.cfg.MaxGraphs > 0 && len(r.spaces) >= r.cfg.MaxGraphs {
		return fmt.Errorf("%w (%d)", ErrRegistryFull, r.cfg.MaxGraphs)
	}
	r.spaces[name] = nil
	return nil
}

func (r *Registry) unreserve(name string) {
	r.mu.Lock()
	delete(r.spaces, name)
	r.mu.Unlock()
}

// commit replaces the reservation with the built space. A create that
// committed after Close won the reservation before the registry closed;
// its feed is closed here so no subscriber can outlive Close.
func (r *Registry) commit(name string, sp *Space) {
	r.mu.Lock()
	closed := r.closed
	r.spaces[name] = sp
	r.graphs.Set(int64(len(r.spaces)))
	r.mu.Unlock()
	if closed {
		sp.close()
	}
	r.created.Inc()
	sp.syncSizeMetrics(sp.Acquire())
}

// newSpace wires one space: publisher, feed, and labeled metric handles.
func (r *Registry) newSpace(name string, pub *view.Publisher) *Space {
	sp := &Space{
		name:    name,
		pub:     pub,
		workers: r.cfg.Workers,
		quotas:  r.cfg.Quotas,
		feed:    newFeed(r.cfg.FeedCapacity),
	}
	if reg := r.cfg.Registry; reg != nil {
		lbl := obs.Labels{"graph": r.labelCap.Value(name)}
		sp.mt = spaceMetrics{
			edges: reg.Gauge("trikcore_graph_edges",
				"Edges in the graph's published snapshot.", lbl),
			vertices: reg.Gauge("trikcore_graph_vertices",
				"Vertices in the graph's published snapshot.", lbl),
			publishes: reg.Counter("trikcore_graph_publishes_total",
				"Snapshots published per graph.", lbl),
			quotaRejections: reg.Counter("trikcore_graph_quota_rejections_total",
				"Write batches rejected by quota per graph.", lbl),
			events: reg.Counter("trikcore_graph_feed_events_total",
				"Change-feed events recorded per graph.", lbl),
			subscribers: reg.Gauge("trikcore_graph_subscribers",
				"Live change-feed subscribers per graph.", lbl),
		}
		sp.feed.subsGauge = sp.mt.subscribers
	}
	return sp
}

// Get returns the space named name.
func (r *Registry) Get(name string) (*Space, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sp, ok := r.spaces[name]
	if !ok || sp == nil { // nil = reservation mid-create
		return nil, false
	}
	return sp, true
}

// List returns the hosted graph names, sorted.
func (r *Registry) List() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.spaces))
	for name, sp := range r.spaces {
		if sp != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Len returns the number of hosted spaces.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spaces)
}

// Delete removes the space named name and closes its feed, terminating
// every live subscriber. The space's snapshots stay valid for readers
// that already acquired them; the name becomes immediately reusable.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	sp, ok := r.spaces[name]
	if !ok || sp == nil {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(r.spaces, name)
	r.graphs.Set(int64(len(r.spaces)))
	r.mu.Unlock()
	r.deleted.Inc()
	sp.close()
	return nil
}

// Close shuts every space's feed down and rejects further creates — the
// graceful-shutdown hook: closing feeds unblocks all SSE handlers so
// http.Server.Shutdown can drain.
func (r *Registry) Close() {
	defer watchdog.Start("registry.Registry.Close")()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	names := make([]string, 0, len(r.spaces))
	for name := range r.spaces {
		names = append(names, name)
	}
	sort.Strings(names) // close feeds in stable order
	spaces := make([]*Space, 0, len(names))
	for _, name := range names {
		if sp := r.spaces[name]; sp != nil {
			spaces = append(spaces, sp)
		}
	}
	r.mu.Unlock()
	for _, sp := range spaces {
		sp.close()
	}
}

// spaceMetrics is one space's labeled handle set; the zero value (all
// nil handles) is the uninstrumented no-op configuration.
type spaceMetrics struct {
	edges           *obs.Gauge
	vertices        *obs.Gauge
	publishes       *obs.Counter
	quotaRejections *obs.Counter
	events          *obs.Counter
	subscribers     *obs.Gauge
}

// Space is one hosted graph: a named publisher with quotas, a per-graph
// bookmark slot and a change feed.
type Space struct {
	name string
	pub  *view.Publisher
	// wmu serializes quota-checked writes so the feed always sees
	// contiguous (previous, current) snapshot pairs; readers never take
	// it (Acquire stays one atomic load).
	wmu     sync.Mutex
	workers int
	quotas  Quotas
	feed    *Feed
	// bookmark is the snapshot pinned by POST /snapshot for this graph;
	// nil until the first bookmark.
	bookmark atomic.Pointer[view.Snapshot]
	mt       spaceMetrics
}

// Name returns the space's registered name.
func (sp *Space) Name() string { return sp.name }

// Publisher exposes the underlying publisher for callers that need the
// full view API (Mutate and friends). Quota enforcement only covers
// Apply; direct publisher mutations bypass it.
func (sp *Space) Publisher() *view.Publisher { return sp.pub }

// Feed returns the space's change feed.
func (sp *Space) Feed() *Feed { return sp.feed }

// Acquire returns the current published snapshot: one atomic load.
func (sp *Space) Acquire() *view.Snapshot { return sp.pub.Acquire() }

// Bookmark returns the pinned snapshot, or nil.
func (sp *Space) Bookmark() *view.Snapshot { return sp.bookmark.Load() }

// SetBookmark pins sn as the graph's bookmark.
func (sp *Space) SetBookmark(sn *view.Snapshot) { sp.bookmark.Store(sn) }

// MaxBodyBytes returns the per-request write body cap for this space
// (0 = the caller's default).
func (sp *Space) MaxBodyBytes() int64 { return sp.quotas.MaxBodyBytes }

// Apply applies one batch of edge operations with quota enforcement.
// The check runs against the live engine under the writer lock and is
// exact: it overlays the batch (last op per edge wins, the ApplyBatch
// contract) over current membership and counts the final vertex and
// edge deltas, so a rejected batch has provably touched nothing — no
// partial application, no snapshot, no version bump. On success the
// effective change (if any) is published and handed to the feed.
func (sp *Space) Apply(ops []dynamic.EdgeOp) (added, removed int, err error) {
	return sp.ApplyTraced(ops, nil)
}

// ApplyTraced is Apply with a flight-recorder trace riding the batch: the
// whole quota-check + mutate + feed-publish path is spanned, and the
// trace flows into the publisher (and from there the engine's stage
// spans). A nil tr is exactly Apply.
func (sp *Space) ApplyTraced(ops []dynamic.EdgeOp, tr *trace.Trace) (added, removed int, err error) {
	sp.wmu.Lock()
	defer sp.wmu.Unlock()
	defer watchdog.Start("registry.Space.Apply")()
	tsp := tr.StartSpan("space.apply", "registry")
	prev := sp.pub.Acquire()
	cur := sp.pub.MutateTraced(func(en *dynamic.Engine) {
		if err = sp.quotas.check(en, ops); err != nil {
			return
		}
		if sp.workers > 1 {
			added, removed = en.ApplyBatchParallel(ops, sp.workers)
		} else {
			added, removed = en.ApplyBatch(ops)
		}
	}, tr)
	if err != nil {
		sp.mt.quotaRejections.Inc()
		tsp.End()
		return 0, 0, err
	}
	if cur != prev {
		sp.mt.publishes.Inc()
		sp.syncSizeMetrics(cur)
		fsp := tr.StartSpan("feed.publish", "registry")
		if n := sp.feed.publish(prev, cur); n > 0 {
			sp.mt.events.Add(uint64(n))
		}
		fsp.End()
	}
	tsp.End()
	return added, removed, nil
}

// syncSizeMetrics refreshes the size gauges from sn.
func (sp *Space) syncSizeMetrics(sn *view.Snapshot) {
	sp.mt.edges.Set(int64(sn.NumEdges()))
	sp.mt.vertices.Set(int64(sn.NumVertices()))
}

// close shuts the feed down (idempotent).
func (sp *Space) close() { sp.feed.Close() }

// check verifies ops against q on the live engine. It mirrors the
// ApplyBatch dedup contract — the last op naming an edge wins, and edge
// deletion never removes vertices — so the computed final counts equal
// what applying the batch would produce.
func (q Quotas) check(en *dynamic.Engine, ops []dynamic.EdgeOp) error {
	if q.MaxVertices <= 0 && q.MaxEdges <= 0 {
		return nil
	}
	final := make(map[graph.Edge]bool, len(ops))
	for _, op := range ops {
		final[graph.NewEdge(op.U, op.V)] = !op.Del
	}
	edgeDelta := 0
	newVerts := make(map[graph.Vertex]bool)
	for e, present := range final {
		was := en.HasEdge(e.U, e.V)
		switch {
		case present && !was:
			edgeDelta++
			for _, v := range [2]graph.Vertex{e.U, e.V} {
				if !en.HasVertex(v) {
					newVerts[v] = true
				}
			}
		case !present && was:
			edgeDelta--
		}
	}
	if want := en.NumEdges() + edgeDelta; q.MaxEdges > 0 && want > q.MaxEdges {
		return &QuotaError{Resource: "edges", Limit: q.MaxEdges, Have: en.NumEdges(), Want: want}
	}
	if want := en.NumVertices() + len(newVerts); q.MaxVertices > 0 && want > q.MaxVertices {
		return &QuotaError{Resource: "vertices", Limit: q.MaxVertices, Have: en.NumVertices(), Want: want}
	}
	return nil
}
