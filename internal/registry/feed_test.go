package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"trikcore/internal/dynamic"
	"trikcore/internal/graph"
)

// collect drains every event currently buffered on sub.
func collect(sub *Subscriber) []Event {
	var out []Event
	for {
		select {
		case ev := <-sub.C:
			out = append(out, ev)
		default:
			return out
		}
	}
}

func TestFeedArmsOnFirstSubscribe(t *testing.T) {
	r := New(Config{})
	sp, err := r.Create("g", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Publications before any subscriber are not recorded: nobody pays
	// for diffing a feed no one has ever watched.
	if _, _, err := sp.Apply([]dynamic.EdgeOp{add(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if id := sp.Feed().LastID(); id != 0 {
		t.Fatalf("unarmed feed recorded events: LastID = %d", id)
	}
	_, sub := sp.Feed().Subscribe(0)
	defer sp.Feed().Unsubscribe(sub)
	if _, _, err := sp.Apply([]dynamic.EdgeOp{add(2, 3)}); err != nil {
		t.Fatal(err)
	}
	evs := collect(sub)
	if len(evs) != 1 || evs[0].ID != 1 || evs[0].Kind != KindKappa {
		t.Fatalf("events after arming = %+v", evs)
	}
	// Armed is permanent: with zero live subscribers the feed keeps
	// recording, so a reconnect can resume without a gap.
	sp.Feed().Unsubscribe(sub)
	if _, _, err := sp.Apply([]dynamic.EdgeOp{add(3, 4)}); err != nil {
		t.Fatal(err)
	}
	if id := sp.Feed().LastID(); id != 2 {
		t.Fatalf("armed feed stopped recording: LastID = %d", id)
	}
}

func TestFeedKappaEventShape(t *testing.T) {
	r := New(Config{})
	sp, err := r.Create("g", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, sub := sp.Feed().Subscribe(0)
	defer sp.Feed().Unsubscribe(sub)

	// A fresh triangle: three promote events, sorted by edge, κ -1 → 1.
	if _, _, err := sp.Apply([]dynamic.EdgeOp{add(21, 22), add(20, 21), add(20, 22)}); err != nil {
		t.Fatal(err)
	}
	evs := collect(sub)
	if len(evs) < 3 {
		t.Fatalf("got %d events, want >= 3", len(evs))
	}
	wantEdges := [][2]graph.Vertex{{20, 21}, {20, 22}, {21, 22}}
	version := sp.Acquire().Version
	for i, want := range wantEdges {
		var ke KappaEvent
		if err := json.Unmarshal(evs[i].Data, &ke); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ke.ID != uint64(i+1) || ke.Version != version || ke.Type != TypePromote ||
			ke.U != want[0] || ke.V != want[1] || ke.From != KappaAbsent || ke.To != 1 {
			t.Fatalf("event %d = %+v, want promote %v -1→1", i, ke, want)
		}
	}

	// Removing one edge demotes the other two (κ 1 → 0) and demotes the
	// removed edge to absent.
	if _, _, err := sp.Apply([]dynamic.EdgeOp{del(20, 21)}); err != nil {
		t.Fatal(err)
	}
	evs = collect(sub)
	if len(evs) != 3 {
		t.Fatalf("got %d demotion events, want 3: %+v", len(evs), evs)
	}
	var gone KappaEvent
	if err := json.Unmarshal(evs[0].Data, &gone); err != nil {
		t.Fatal(err)
	}
	if gone.Type != TypeDemote || gone.U != 20 || gone.V != 21 || gone.To != KappaAbsent {
		t.Fatalf("removal event = %+v", gone)
	}
}

func TestFeedPatternEvents(t *testing.T) {
	// Seed: a 6-cycle — original vertices, no triangles.
	seed := graph.New()
	for i := graph.Vertex(0); i < 6; i++ {
		seed.AddEdge(i, (i+1)%6)
	}
	r := New(Config{})
	sp, err := r.Create("g", seed)
	if err != nil {
		t.Fatal(err)
	}
	_, sub := sp.Feed().Subscribe(0)
	defer sp.Feed().Unsubscribe(sub)

	// Chords among the original vertices form a triangle of entirely new
	// edges — the paper's New Form pattern (Figure 4a).
	ops := []dynamic.EdgeOp{add(0, 2), add(2, 4), add(0, 4)}
	if _, _, err := sp.Apply(ops); err != nil {
		t.Fatal(err)
	}
	var patterns []PatternEvent
	for _, ev := range collect(sub) {
		if ev.Kind != KindPattern {
			continue
		}
		var pe PatternEvent
		if err := json.Unmarshal(ev.Data, &pe); err != nil {
			t.Fatal(err)
		}
		patterns = append(patterns, pe)
	}
	if len(patterns) == 0 {
		t.Fatal("no pattern events for a new-form triangle")
	}
	found := false
	for _, pe := range patterns {
		if pe.Pattern == "new-form" && len(pe.Vertices) == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("new-form over {0,2,4} missing: %+v", patterns)
	}
}

func TestFeedResumeAndRingEviction(t *testing.T) {
	r := New(Config{FeedCapacity: 4})
	sp, err := r.Create("g", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, arm := sp.Feed().Subscribe(0)
	sp.Feed().Unsubscribe(arm)

	// Ten single-edge publications in disjoint regions: one event each.
	for i := 0; i < 10; i++ {
		base := graph.Vertex(100 * (i + 1))
		if _, _, err := sp.Apply([]dynamic.EdgeOp{add(base, base+1)}); err != nil {
			t.Fatal(err)
		}
	}
	if id := sp.Feed().LastID(); id != 10 {
		t.Fatalf("LastID = %d, want 10", id)
	}
	// Resume from 7: ids 8..10 are retained and replayed.
	replay, sub := sp.Feed().Subscribe(7)
	sp.Feed().Unsubscribe(sub)
	if len(replay) != 3 || replay[0].ID != 8 || replay[2].ID != 10 {
		t.Fatalf("resume from 7 replayed %+v", replay)
	}
	// Resume from 0: the ring only holds the last 4.
	replay, sub = sp.Feed().Subscribe(0)
	sp.Feed().Unsubscribe(sub)
	if len(replay) != 4 || replay[0].ID != 7 {
		t.Fatalf("full replay %+v, want ids 7..10", replay)
	}
}

func TestFeedDropsSlowConsumer(t *testing.T) {
	r := New(Config{})
	sp, err := r.Create("g", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, slow := sp.Feed().Subscribe(0)
	// Never read: once the buffer is full and another event arrives the
	// subscriber is dropped rather than allowed to stall the writer.
	for i := 0; i <= subscriberBuffer+1; i++ {
		base := graph.Vertex(100 * (i + 1))
		if _, _, err := sp.Apply([]dynamic.EdgeOp{add(base, base+1)}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-slow.Done:
	default:
		t.Fatal("slow consumer not dropped")
	}
	// The feed itself is unaffected: a fresh subscriber still works.
	_, fresh := sp.Feed().Subscribe(sp.Feed().LastID())
	defer sp.Feed().Unsubscribe(fresh)
	if _, _, err := sp.Apply([]dynamic.EdgeOp{add(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if evs := collect(fresh); len(evs) != 1 {
		t.Fatalf("fresh subscriber got %d events, want 1", len(evs))
	}
}

// TestFeedDeterministicAcrossWorkers pins the feed's core guarantee:
// identical publish sequences produce byte-identical event streams, at
// any worker count.
func TestFeedDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []Event {
		r := New(Config{Workers: workers})
		sp, err := r.Create("g", k5())
		if err != nil {
			t.Fatal(err)
		}
		_, sub := sp.Feed().Subscribe(0)
		defer sp.Feed().Unsubscribe(sub)
		batches := [][]dynamic.EdgeOp{
			{add(20, 21), add(21, 22), add(20, 22), add(0, 20)},
			{del(0, 1), add(22, 23), add(20, 23), add(21, 23)},
			{del(20, 21)},
		}
		for _, ops := range batches {
			if _, _, err := sp.Apply(ops); err != nil {
				t.Fatal(err)
			}
		}
		var out []Event
		for {
			evs := collect(sub)
			if evs == nil {
				return out
			}
			out = append(out, evs...)
		}
	}
	base := run(1)
	if len(base) == 0 {
		t.Fatal("no events")
	}
	for _, workers := range []int{1, 4} {
		got := run(workers)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d events vs %d", workers, len(got), len(base))
		}
		for i := range base {
			if got[i].ID != base[i].ID || got[i].Kind != base[i].Kind ||
				!bytes.Equal(got[i].Data, base[i].Data) {
				t.Fatalf("workers=%d event %d differs:\n%d %s %s\nvs\n%d %s %s",
					workers, i, got[i].ID, got[i].Kind, got[i].Data,
					base[i].ID, base[i].Kind, base[i].Data)
			}
		}
	}
}

func TestQuotaErrorMessage(t *testing.T) {
	qe := &QuotaError{Resource: "edges", Limit: 10, Have: 9, Want: 12}
	want := "quota exceeded: batch would grow edges from 9 to 12, limit 10"
	if got := qe.Error(); got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
	_ = fmt.Sprintf("%v", qe)
}
