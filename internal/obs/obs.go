// Package obs is trikcore's zero-dependency observability layer: an
// atomic metrics registry with Prometheus text-format exposition, a
// lightweight span/phase timer for annotating algorithm phases, and
// nothing else — no third-party client, no background goroutines, no
// global state.
//
// The design goal is that instrumentation is injectable and free when
// absent. Every metric handle (*Counter, *Gauge, *Histogram) is nil-safe:
// methods on a nil handle do nothing, and Nop() returns a nil *Registry
// whose constructors hand out nil handles, so a library call site writes
//
//	en.mt.promotions.Inc()
//
// unconditionally and pays a single predictable branch when observability
// is disabled — no allocation, no time.Now, no atomics. With a real
// Registry the hot-path cost is one atomic add per event (counters,
// histogram bins are lock-free atomic.Uint64 cells).
//
// Registration is idempotent: asking for the same (name, labels) pair
// returns the same handle, so layers can be wired independently against
// one shared registry. Exposition is deterministic — families sort by
// name, series by their canonical (key-sorted) label signature — which
// lets the serving layer's byte-determinism suite cover /metrics too.
//
// Naming convention (enforced by tests, documented in DESIGN.md §5d):
// trikcore_<subsystem>_<name>_<unit>, counters suffixed _total, duration
// histograms in seconds.
package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Labels is one metric's label set. Label order never matters: the
// registry keys and renders series by the canonical key-sorted form.
type Labels map[string]string

// metricKind discriminates the three family types.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "unknown"
}

// Registry holds metric families and hands out live handles. All methods
// are safe for concurrent use; handle methods (Inc, Set, Observe) are
// lock-free. The zero registry is not usable — call NewRegistry — but a
// nil *Registry is: it is the Nop registry, and every constructor on it
// returns a nil (no-op) handle.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // trikcheck:guardedby mu
}

// family is one metric name: its metadata plus every labeled series.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histogram families only
	series map[string]*series
}

// series is one (name, labels) instance. Exactly one of c/g/h is set,
// matching the family kind.
type series struct {
	sig string // canonical rendered label block: `` or `{a="x",b="y"}`
	c   *Counter
	g   *Gauge
	h   *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Nop returns the no-op registry: a nil *Registry on which every
// constructor returns a nil handle. All handle methods on nil receivers
// do nothing, so a library instrumented against Nop() runs its hot paths
// untouched.
func Nop() *Registry { return nil }

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Counter returns the counter named name with the given labels, creating
// it on first use. Re-registration with a different kind or help text
// panics (a programming error, caught by the package tests).
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	s := r.getOrCreate(name, help, counterKind, nil, labels)
	return s.c
}

// Gauge returns the gauge named name with the given labels, creating it
// on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	s := r.getOrCreate(name, help, gaugeKind, nil, labels)
	return s.g
}

// Histogram returns the histogram named name with the given labels and
// fixed bucket upper bounds (ascending; +Inf is implicit), creating it on
// first use. Later calls for the same family must pass equal bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending: %v", name, bounds))
		}
	}
	s := r.getOrCreate(name, help, histogramKind, bounds, labels)
	return s.h
}

// getOrCreate resolves (name, labels) to its series, creating family and
// series as needed and validating metadata consistency.
func (r *Registry) getOrCreate(name, help string, kind metricKind, bounds []float64, labels Labels) *series {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{
			name:   name,
			help:   help,
			kind:   kind,
			bounds: append([]float64(nil), bounds...),
			series: make(map[string]*series),
		}
		r.families[name] = f
	} else {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, f.kind))
		}
		if f.help != help {
			panic(fmt.Sprintf("obs: metric %s re-registered with different help", name))
		}
		if kind == histogramKind && !equalBounds(f.bounds, bounds) {
			panic(fmt.Sprintf("obs: histogram %s re-registered with different bounds", name))
		}
	}
	s := f.series[sig]
	if s == nil {
		s = &series{sig: sig}
		switch kind {
		case counterKind:
			s.c = &Counter{}
		case gaugeKind:
			s.g = &Gauge{}
		case histogramKind:
			s.h = newHistogram(f.bounds)
		}
		f.series[sig] = s
	}
	return s
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// labelSignature renders labels in canonical form: keys sorted, values
// escaped, the whole block braced — or the empty string for no labels.
func labelSignature(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !labelRe.MatchString(k) {
			panic(fmt.Sprintf("obs: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(labels[k]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabelValue applies the exposition-format escapes: backslash,
// double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
