package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// ValidateExposition parses a Prometheus text-format document and checks
// every line against the subset of the format this package emits:
//
//   - each family opens with `# HELP` then `# TYPE` with a known type;
//   - families appear in strictly ascending name order;
//   - every sample line belongs to the most recent family (for
//     histograms, via the _bucket/_sum/_count suffixes);
//   - label blocks are well-formed with strictly ascending key order
//     (the byte-determinism contract for label sets);
//   - values parse as numbers; histogram buckets are cumulative,
//     non-decreasing, end in le="+Inf", and agree with _count.
//
// It returns the number of sample lines (series) on success. It is the
// oracle behind the exposition tests here, in internal/server, and the
// CI scrape check.
func ValidateExposition(data []byte) (samples int, err error) {
	var (
		curName string // current family name
		curType string
		helpFor string // family name announced by the pending # HELP
		lastFam string // previous family, for global name ordering
		// histogram bucket state per series signature
		bucketCum  map[string]uint64
		bucketDone map[string]bool // saw le="+Inf"
		countFor   map[string]uint64
	)
	finishFamily := func() error {
		if curType == "histogram" {
			for sig, cnt := range countFor {
				if !bucketDone[sig] {
					return fmt.Errorf("histogram %s%s: no le=\"+Inf\" bucket", curName, sig)
				}
				if cum := bucketCum[sig]; cum != cnt {
					return fmt.Errorf("histogram %s%s: +Inf bucket %d != count %d", curName, sig, cum, cnt)
				}
			}
		}
		return nil
	}
	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !nameRe.MatchString(name) {
				return 0, fmt.Errorf("line %d: malformed HELP line %q", lineNo, line)
			}
			if err := finishFamily(); err != nil {
				return 0, err
			}
			if curName != "" {
				lastFam = curName
			}
			if lastFam != "" && name <= lastFam {
				return 0, fmt.Errorf("line %d: family %s out of order after %s", lineNo, name, lastFam)
			}
			helpFor, curName, curType = name, "", ""
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return 0, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, typ := fields[0], fields[1]
			if name != helpFor {
				return 0, fmt.Errorf("line %d: TYPE %s does not follow its HELP (pending %q)", lineNo, name, helpFor)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				return 0, fmt.Errorf("line %d: unknown type %q", lineNo, typ)
			}
			curName, curType = name, typ
			bucketCum = make(map[string]uint64)
			bucketDone = make(map[string]bool)
			countFor = make(map[string]uint64)
		case strings.HasPrefix(line, "#"):
			return 0, fmt.Errorf("line %d: unexpected comment %q", lineNo, line)
		default:
			if curName == "" {
				return 0, fmt.Errorf("line %d: sample %q before any TYPE", lineNo, line)
			}
			name, sig, value, le, err := parseSample(line)
			if err != nil {
				return 0, fmt.Errorf("line %d: %v", lineNo, err)
			}
			switch curType {
			case "counter", "gauge":
				if name != curName {
					return 0, fmt.Errorf("line %d: sample %s inside family %s", lineNo, name, curName)
				}
				if le != "" {
					return 0, fmt.Errorf("line %d: le label on non-histogram %s", lineNo, name)
				}
			case "histogram":
				switch name {
				case curName + "_bucket":
					if le == "" {
						return 0, fmt.Errorf("line %d: bucket without le label", lineNo)
					}
					cum, err := strconv.ParseUint(value, 10, 64)
					if err != nil {
						return 0, fmt.Errorf("line %d: bucket value %q: %v", lineNo, value, err)
					}
					if bucketDone[sig] {
						return 0, fmt.Errorf("line %d: bucket after le=\"+Inf\" for %s%s", lineNo, curName, sig)
					}
					if cum < bucketCum[sig] {
						return 0, fmt.Errorf("line %d: bucket counts not cumulative for %s%s", lineNo, curName, sig)
					}
					bucketCum[sig] = cum
					if le == "+Inf" {
						bucketDone[sig] = true
					}
				case curName + "_sum":
					if _, err := strconv.ParseFloat(value, 64); err != nil {
						return 0, fmt.Errorf("line %d: sum value %q: %v", lineNo, value, err)
					}
				case curName + "_count":
					cnt, err := strconv.ParseUint(value, 10, 64)
					if err != nil {
						return 0, fmt.Errorf("line %d: count value %q: %v", lineNo, value, err)
					}
					countFor[sig] = cnt
				default:
					return 0, fmt.Errorf("line %d: sample %s inside histogram family %s", lineNo, name, curName)
				}
			}
			samples++
		}
	}
	if err := finishFamily(); err != nil {
		return 0, err
	}
	return samples, nil
}

// ParseValues parses a Prometheus text-format document into a flat
// map from "name{signature}" (the signature includes any le label,
// rendered exactly as exposed) to sample value. It is the scrape-side
// complement of Gather: loadgen uses it to diff server metrics across a
// run. Malformed sample lines fail the whole parse; comment lines are
// skipped without family-structure validation (use ValidateExposition
// for that).
func ParseValues(data []byte) (map[string]float64, error) {
	out := make(map[string]float64)
	for ln, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, sig, value, le, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln+1, err)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: value %q: %v", ln+1, value, err)
		}
		key := name + sig
		if le != "" {
			// parseSample strips le from the signature; fold it back so
			// bucket series stay distinct.
			key += `<le="` + le + `">`
		}
		out[key] = v
	}
	return out, nil
}

// parseSample splits one sample line into name, label signature (with
// any le label removed), value, and the le label value if present, while
// validating name and label syntax and ascending label-key order.
func parseSample(line string) (name, sig, value, le string, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return "", "", "", "", fmt.Errorf("no value in sample %q", line)
	}
	if brace >= 0 && brace < sp {
		name = rest[:brace]
		end := strings.Index(rest, "} ")
		if end < 0 {
			return "", "", "", "", fmt.Errorf("unterminated label block in %q", line)
		}
		labels := rest[brace+1 : end]
		value = rest[end+2:]
		prevKey := ""
		var kept []string
		for _, pair := range splitLabels(labels) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !labelRe.MatchString(k) {
				return "", "", "", "", fmt.Errorf("malformed label %q in %q", pair, line)
			}
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", "", "", "", fmt.Errorf("unquoted label value %q in %q", v, line)
			}
			if k == "le" {
				le = v[1 : len(v)-1]
				continue
			}
			if prevKey != "" && k <= prevKey {
				return "", "", "", "", fmt.Errorf("label %q out of order after %q in %q", k, prevKey, line)
			}
			prevKey = k
			kept = append(kept, pair)
		}
		if len(kept) > 0 {
			sig = "{" + strings.Join(kept, ",") + "}"
		}
	} else {
		name = rest[:sp]
		value = rest[sp+1:]
	}
	if !nameRe.MatchString(name) {
		return "", "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if _, ferr := strconv.ParseFloat(value, 64); ferr != nil {
		return "", "", "", "", fmt.Errorf("unparseable value %q in %q", value, line)
	}
	return name, sig, value, le, nil
}

// splitLabels splits a label block body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
