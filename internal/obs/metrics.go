package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; a nil *Counter is a no-op (the disabled-instrumentation path).
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64. The zero value is ready to use; a nil
// *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Bucket i holds
// observations v with v <= bounds[i] (and greater than the previous
// bound); one implicit +Inf bucket catches the rest. Every bin is a
// lock-free atomic.Uint64, the running sum is a CAS loop over float64
// bits, so concurrent Observe calls never block each other or readers.
// The observation count is derived from the bins rather than kept in a
// separate atomic, so a scrape racing an Observe can never see the +Inf
// cumulative bucket disagree with _count. A nil *Histogram is a no-op.
type Histogram struct {
	bounds []float64
	bins   []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, bins: make([]atomic.Uint64, len(bounds)+1)}
}

// NewHistogram builds a standalone histogram outside any registry —
// for client-side measurement (loadgen) where the lock-free bins and
// Quantile are wanted without Prometheus exposition. The bounds slice
// is retained; callers must not mutate it.
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.bins[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.bins {
		n += h.bins[i].Load()
	}
	return n
}

// Sum returns the sum of observed values (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// distribution as the smallest bucket bound whose cumulative count
// reaches q of the total — an upper bound on the true quantile that is
// off by at most one bucket width, which log-scaled layouts keep to a
// constant relative error. Observations beyond the last bound report
// +Inf; an empty or nil histogram reports NaN.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	// Read the bins once; a racing Observe moves the estimate by at most
	// its own weight, same as scraping.
	counts := make([]uint64, len(h.bins))
	var total uint64
	for i := range h.bins {
		counts[i] = h.bins[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return math.NaN()
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// DurationBuckets is the default bucket layout for duration histograms,
// in seconds: 10µs to 1s with a 1-2.5-5 progression — wide enough for
// both per-op engine costs (microseconds) and endpoint tail latency
// (milliseconds to seconds).
var DurationBuckets = []float64{
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1,
}

// LogDurationBuckets is the fine log-scaled bucket layout for request
// latency, in seconds: 1µs to 2.5s with a 1-1.6-2.5-4-6.3 progression
// (five buckets per decade, each bound ≈1.58× the previous). The
// sub-millisecond decades get enough resolution to pin a p999 on the
// lock-free read path — DurationBuckets' coarse 1-2.5-5 steps smear the
// whole sub-100µs region into three bins — at a fixed cost of 33 bins
// per series.
var LogDurationBuckets = []float64{
	1e-6, 1.6e-6, 2.5e-6, 4e-6, 6.3e-6,
	1e-5, 1.6e-5, 2.5e-5, 4e-5, 6.3e-5,
	1e-4, 1.6e-4, 2.5e-4, 4e-4, 6.3e-4,
	1e-3, 1.6e-3, 2.5e-3, 4e-3, 6.3e-3,
	1e-2, 1.6e-2, 2.5e-2, 4e-2, 6.3e-2,
	0.1, 0.16, 0.25, 0.4, 0.63,
	1, 1.6, 2.5,
}

// CountBuckets is the default bucket layout for small-cardinality count
// histograms (items per batch, sizes of work units): powers of two from
// 1 to 64k, which keeps resolution high where such distributions live.
var CountBuckets = []float64{
	1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
	1024, 4096, 16384, 65536,
}
