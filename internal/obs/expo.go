package obs

import (
	"bytes"
	"io"
	"sort"
	"strconv"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format this package emits.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// Gather renders the registry in Prometheus text format. The output is a
// pure, deterministic function of the registered series and their current
// values: families appear sorted by name, series sorted by their
// canonical key-sorted label signature, histograms as cumulative
// _bucket/_sum/_count lines. Families with no series are impossible by
// construction (registering a metric creates its first series), and a
// nil registry gathers to nil.
func (r *Registry) Gather() []byte {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var buf bytes.Buffer
	for _, name := range names {
		f := r.families[name]
		buf.WriteString("# HELP ")
		buf.WriteString(f.name)
		buf.WriteByte(' ')
		buf.WriteString(f.help)
		buf.WriteByte('\n')
		buf.WriteString("# TYPE ")
		buf.WriteString(f.name)
		buf.WriteByte(' ')
		buf.WriteString(f.kind.String())
		buf.WriteByte('\n')

		var sigs []string
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := f.series[sig]
			switch f.kind {
			case counterKind:
				writeSample(&buf, f.name, sig, strconv.FormatUint(s.c.Value(), 10))
			case gaugeKind:
				writeSample(&buf, f.name, sig, strconv.FormatInt(s.g.Value(), 10))
			case histogramKind:
				writeHistogram(&buf, f, s)
			}
		}
	}
	return buf.Bytes()
}

// WritePrometheus writes the rendered exposition to w.
func (r *Registry) WritePrometheus(w io.Writer) error {
	_, err := w.Write(r.Gather())
	return err
}

// writeSample emits one `name{sig} value` line.
func writeSample(buf *bytes.Buffer, name, sig, value string) {
	buf.WriteString(name)
	buf.WriteString(sig)
	buf.WriteByte(' ')
	buf.WriteString(value)
	buf.WriteByte('\n')
}

// writeHistogram emits the cumulative bucket lines plus _sum and _count.
// The le label is appended after the series' own (sorted) labels — a
// fixed position, so the rendering stays byte-deterministic. _count is
// the +Inf cumulative value read in this same pass, keeping the two
// consistent even when a scrape races an Observe.
func writeHistogram(buf *bytes.Buffer, f *family, s *series) {
	h := s.h
	cum := uint64(0)
	for i := range h.bins {
		cum += h.bins[i].Load()
		le := "+Inf"
		if i < len(f.bounds) {
			le = formatFloat(f.bounds[i])
		}
		writeSample(buf, f.name+"_bucket", mergeLE(s.sig, le), strconv.FormatUint(cum, 10))
	}
	writeSample(buf, f.name+"_sum", s.sig, formatFloat(h.Sum()))
	writeSample(buf, f.name+"_count", s.sig, strconv.FormatUint(cum, 10))
}

// mergeLE appends the le label to a rendered signature.
func mergeLE(sig, le string) string {
	if sig == "" {
		return `{le="` + le + `"}`
	}
	return sig[:len(sig)-1] + `,le="` + le + `"}`
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
