package obs

import "sync"

// Overflow is the label value a LabelCap substitutes once its distinct
// value budget is spent. The underscore prefix keeps it from colliding
// with user-supplied names that pass the server's name validation.
const Overflow = "_other"

// LabelCap bounds the distinct values one metric label may take. The
// registry itself never evicts series, so an unbounded label (say, a
// tenant-chosen graph name) would let one client grow the /metrics
// exposition without limit. A LabelCap admits the first max distinct
// values it sees and maps every later value to Overflow, so the series
// count stays bounded while the hot tenants keep their own series.
//
// Admission is first-come-first-served and permanent: a value admitted
// once keeps its own series forever (re-admitting after eviction would
// split one logical series across two label values). The zero value is
// not usable; a nil *LabelCap passes values through uncapped.
type LabelCap struct {
	mu   sync.Mutex
	max  int             // set once in NewLabelCap; immutable
	seen map[string]bool // trikcheck:guardedby mu
}

// NewLabelCap returns a cap admitting at most max distinct values.
// max <= 0 means unbounded.
func NewLabelCap(max int) *LabelCap {
	return &LabelCap{max: max, seen: make(map[string]bool)}
}

// Value returns v if v is already admitted or the cap still has room,
// and Overflow otherwise. Overflow itself is always passed through and
// never consumes a slot.
func (lc *LabelCap) Value(v string) string {
	if lc == nil || v == Overflow {
		return v
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.seen[v] {
		return v
	}
	if lc.max > 0 && len(lc.seen) >= lc.max {
		return Overflow
	}
	lc.seen[v] = true
	return v
}

// Admitted returns the number of distinct values currently admitted.
func (lc *LabelCap) Admitted() int {
	if lc == nil {
		return 0
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return len(lc.seen)
}
