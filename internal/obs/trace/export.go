package trace

import (
	"encoding/json"
	"sort"
)

// Chrome trace-event JSON (the chrome://tracing / Perfetto "JSON Array
// with metadata" flavor): one complete event ("ph":"X") per trace and
// per span, timestamps and durations in microseconds. Each trace gets
// its own tid so the viewer lays traces out as parallel rows with span
// nesting inferred from time containment.

// event is one Chrome trace-event object. Field order is fixed by the
// struct, so marshaling is byte-deterministic for deterministic inputs.
type event struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat"`
	Ph   string     `json:"ph"`
	Ts   float64    `json:"ts"` // microseconds since the recorder epoch
	Dur  float64    `json:"dur"`
	Pid  int        `json:"pid"`
	Tid  uint64     `json:"tid"`
	Args *eventArgs `json:"args,omitempty"`
}

// eventArgs annotates a trace's root event.
type eventArgs struct {
	Trace        uint64 `json:"trace"`
	DroppedSpans int    `json:"dropped_spans,omitempty"`
}

// document is the top-level export object.
type document struct {
	DisplayTimeUnit string  `json:"displayTimeUnit"`
	TraceEvents     []event `json:"traceEvents"`
}

// Export renders the retained traces (recent ∪ slowest, deduplicated by
// id, ascending id order) as Chrome trace-event JSON. The output is a
// pure function of the retained traces' recorded instants, so with a
// deterministic clock a fixed request sequence exports byte-identically.
// A nil recorder exports an empty document.
func (r *Recorder) Export() []byte {
	var traces []*Trace
	if r != nil {
		all := r.snapshot()
		seen := make(map[uint64]bool, len(all))
		for _, t := range all {
			if !seen[t.id] {
				seen[t.id] = true
				traces = append(traces, t)
			}
		}
		sort.Slice(traces, func(i, j int) bool { return traces[i].id < traces[j].id })
	}

	doc := document{DisplayTimeUnit: "ms", TraceEvents: []event{}}
	for _, t := range traces {
		t.mu.Lock()
		base := t.start.Sub(r.epoch).Nanoseconds()
		args := &eventArgs{Trace: t.id, DroppedSpans: t.dropped}
		doc.TraceEvents = append(doc.TraceEvents, event{
			Name: t.name,
			Cat:  "request",
			Ph:   "X",
			Ts:   micros(base),
			Dur:  micros(t.total.Nanoseconds()),
			Pid:  1,
			Tid:  t.id,
			Args: args,
		})
		for _, sp := range t.spans {
			dur := sp.dur
			if dur < 0 {
				dur = 0 // open span on a finished trace cannot happen; be safe
			}
			doc.TraceEvents = append(doc.TraceEvents, event{
				Name: sp.name,
				Cat:  sp.cat,
				Ph:   "X",
				Ts:   micros(base + sp.start),
				Dur:  micros(dur),
				Pid:  1,
				Tid:  t.id,
			})
		}
		t.mu.Unlock()
	}
	data, err := json.Marshal(doc)
	if err != nil {
		// A struct of strings and numbers cannot fail to encode.
		panic("trace: export marshal: " + err.Error())
	}
	return append(data, '\n')
}

// micros converts nanoseconds to the format's microsecond unit. Equal
// inputs yield bit-equal float64s and therefore equal rendered bytes,
// which is all the determinism contract needs.
func micros(ns int64) float64 { return float64(ns) / 1e3 }
