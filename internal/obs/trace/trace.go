// Package trace is trikcore's per-request flight recorder: a
// zero-dependency span tracer that follows one request (or one write
// batch) through server → registry → view.Publisher → dynamic.Engine
// and keeps a bounded record of where the time went.
//
// The model is deliberately smaller than a distributed tracer. A Trace
// is one unit of served work — an HTTP request, a write batch — with a
// process-unique id and a flat list of timed spans. Spans carry no
// explicit parent pointer: within one trace they nest by time
// containment (the Chrome trace viewer renders exactly that), which is
// all a single-process request path needs and keeps recording to one
// short critical section per span.
//
// A Recorder retains two bounded rings of finished traces: the N most
// recent (the "what just happened" view) and the N slowest ever seen
// (the "what hurts" view). Finished traces above a configurable latency
// threshold additionally emit one structured slow-request log line.
// Everything exports as Chrome trace-event JSON (see export.go), served
// by the HTTP layer at GET /debug/trace.
//
// Like the obs metrics registry, absence is free: a nil *Recorder hands
// out nil *Traces, and every method on a nil Trace or zero Span is a
// no-op, so instrumented call sites run untouched when tracing is off.
// The clock is injectable so tests (and the byte-determinism suite) can
// drive the recorder with a deterministic time source.
package trace

import (
	"context"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRing is the retention of each ring (recent and slowest) when
// Options.Ring is zero.
const DefaultRing = 64

// maxSpansPerTrace bounds one trace's span list so a pathological
// request (an SSE stream riding through thousands of publications)
// cannot grow a single trace without limit; later spans are dropped and
// counted.
const maxSpansPerTrace = 4096

// Options configure a Recorder. The zero value is usable: DefaultRing
// retention, no slow-request log, the wall clock.
type Options struct {
	// Ring is the capacity of each of the two retention rings (most
	// recent and slowest); 0 means DefaultRing, negative means 1.
	Ring int
	// SlowThreshold, when > 0 and Logger is set, emits one structured
	// log line for every finished trace at least this slow.
	SlowThreshold time.Duration
	// Logger receives the slow-request lines.
	Logger *slog.Logger
	// Clock substitutes the time source (tests); nil means time.Now.
	Clock func() time.Time
}

// Recorder allocates trace ids and retains finished traces. All methods
// are safe for concurrent use; a nil *Recorder is the disabled tracer.
type Recorder struct {
	now   func() time.Time
	epoch time.Time // export time base: the recorder's construction instant
	slow  time.Duration
	log   *slog.Logger
	ring  int
	ids   atomic.Uint64

	mu      sync.Mutex
	recent  []*Trace // circular, oldest at head when full; trikcheck:guardedby mu
	head    int      // next write position in recent; trikcheck:guardedby mu
	slowest []*Trace // sorted by Duration descending, ≤ ring entries; trikcheck:guardedby mu
}

// New builds a Recorder.
func New(opts Options) *Recorder {
	ring := opts.Ring
	if ring == 0 {
		ring = DefaultRing
	}
	if ring < 1 {
		ring = 1
	}
	now := opts.Clock
	if now == nil {
		now = time.Now
	}
	return &Recorder{
		now:   now,
		epoch: now(),
		slow:  opts.SlowThreshold,
		log:   opts.Logger,
		ring:  ring,
	}
}

// Ring returns the configured per-ring capacity (0 on a nil recorder).
func (r *Recorder) Ring() int {
	if r == nil {
		return 0
	}
	return r.ring
}

// Occupancy reports how many finished traces each ring currently holds
// (both 0 on a nil recorder) — the /healthz "is the flight recorder
// seeing traffic" signal.
func (r *Recorder) Occupancy() (recent, slowest int) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recent), len(r.slowest)
}

// Start opens a new trace named name (the route pattern, a batch label).
// A nil recorder returns a nil trace, on which every method no-ops.
func (r *Recorder) Start(name string) *Trace {
	if r == nil {
		return nil
	}
	return &Trace{
		rec:   r,
		id:    r.ids.Add(1),
		name:  name,
		start: r.now(),
	}
}

// record retires a finished trace into the rings and, when it qualifies,
// the slow-request log.
func (r *Recorder) record(t *Trace) {
	r.mu.Lock()
	if len(r.recent) < r.ring {
		r.recent = append(r.recent, t)
	} else {
		r.recent[r.head] = t
		r.head = (r.head + 1) % r.ring
	}
	r.insertSlowLocked(t)
	r.mu.Unlock()

	if r.log != nil && r.slow > 0 && t.total >= r.slow {
		r.log.LogAttrs(context.Background(), slog.LevelWarn, "slow request",
			slog.Uint64("trace", t.id),
			slog.String("name", t.name),
			slog.Duration("duration", t.total),
			slog.Int("spans", t.spanCount()),
			slog.String("slowest_span", t.slowestSpan()),
		)
	}
}

// insertSlowLocked files t into the slowest ring, kept sorted descending
// by duration; ties break toward the earlier trace id so retention is
// deterministic for a fixed sequence of finishes. The caller holds r.mu.
//
//trikcheck:locked
func (r *Recorder) insertSlowLocked(t *Trace) {
	if len(r.slowest) >= r.ring && t.total <= r.slowest[len(r.slowest)-1].total {
		return
	}
	i := sort.Search(len(r.slowest), func(i int) bool {
		if r.slowest[i].total != t.total {
			return r.slowest[i].total < t.total
		}
		return r.slowest[i].id > t.id
	})
	r.slowest = append(r.slowest, nil)
	copy(r.slowest[i+1:], r.slowest[i:])
	r.slowest[i] = t
	if len(r.slowest) > r.ring {
		r.slowest = r.slowest[:r.ring]
	}
}

// snapshot returns the retained traces — the recent ring in
// finish order (oldest first) followed by the slowest ring — without
// deduplication (export dedups by id).
func (r *Recorder) snapshot() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, len(r.recent)+len(r.slowest))
	if len(r.recent) < r.ring {
		out = append(out, r.recent...)
	} else {
		out = append(out, r.recent[r.head:]...)
		out = append(out, r.recent[:r.head]...)
	}
	out = append(out, r.slowest...)
	return out
}

// span is one recorded timed section: offsets are nanoseconds relative
// to the trace start; dur is -1 while the span is open.
type span struct {
	name  string
	cat   string
	start int64
	dur   int64
}

// Trace is one in-flight or finished unit of work. Methods are safe for
// concurrent use (parallel apply workers may record spans concurrently
// with the coordinator); a nil *Trace is the disabled path.
type Trace struct {
	rec   *Recorder
	id    uint64
	name  string
	start time.Time

	mu      sync.Mutex
	spans   []span // trikcheck:guardedby mu
	dropped int    // spans past maxSpansPerTrace; trikcheck:guardedby mu
	total   time.Duration
}

// ID returns the trace's process-unique id (0 on nil).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Name returns the trace's name ("" on nil).
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Span is one open timed section of a trace. The zero Span (from a nil
// trace) is inert: End does nothing.
type Span struct {
	t   *Trace
	idx int
	t0  time.Time
}

// StartSpan opens a span over the named section. cat groups spans by
// layer ("http", "registry", "view", "engine") in the exported trace.
func (t *Trace) StartSpan(name, cat string) Span {
	if t == nil {
		return Span{}
	}
	t0 := t.rec.now()
	t.mu.Lock()
	if len(t.spans) >= maxSpansPerTrace {
		t.dropped++
		t.mu.Unlock()
		return Span{}
	}
	idx := len(t.spans)
	t.spans = append(t.spans, span{name: name, cat: cat, start: t0.Sub(t.start).Nanoseconds(), dur: -1})
	t.mu.Unlock()
	return Span{t: t, idx: idx, t0: t0}
}

// End closes the span. Ending a zero Span does nothing.
func (s Span) End() {
	if s.t == nil {
		return
	}
	d := s.t.rec.now().Sub(s.t0).Nanoseconds()
	s.t.mu.Lock()
	s.t.spans[s.idx].dur = d
	s.t.mu.Unlock()
}

// Finish retires the trace: its total duration is fixed, any span left
// open is clamped to the finish instant, and the trace enters the
// recorder's rings (and the slow log when it qualifies). Finish must be
// called exactly once; spans must not be started after it. It returns
// the total duration (0 on nil).
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	end := t.rec.now()
	t.mu.Lock()
	t.total = end.Sub(t.start)
	for i := range t.spans {
		if t.spans[i].dur < 0 {
			d := t.total.Nanoseconds() - t.spans[i].start
			if d < 0 {
				d = 0
			}
			t.spans[i].dur = d
		}
	}
	t.mu.Unlock()
	t.rec.record(t)
	return t.total
}

// spanCount reports the number of recorded spans. It reads t.spans
// without t.mu: it runs only on finished traces, after Finish's final
// unlock has published the slice and no writer can touch it again.
//
//trikcheck:locked
func (t *Trace) spanCount() int { return len(t.spans) }

// slowestSpan names the longest recorded span ("" when there is none) —
// the one-token diagnosis attached to slow-request log lines. Like
// spanCount it runs only on finished traces, so t.spans is immutable.
//
//trikcheck:locked
func (t *Trace) slowestSpan() string {
	best, bestDur := "", int64(-1)
	for _, sp := range t.spans {
		if sp.dur > bestDur {
			best, bestDur = sp.cat+":"+sp.name, sp.dur
		}
	}
	return best
}

// ctxKey is the context key tracing rides under.
type ctxKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil — which every
// trace method tolerates, so call sites never need to check.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
