package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic time source: every reading advances the
// clock by step, so any fixed sequence of recorder calls observes a
// fixed sequence of instants.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0), step: step}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

func TestNilRecorderAndTraceAreNoOps(t *testing.T) {
	var r *Recorder
	if got := r.Ring(); got != 0 {
		t.Fatalf("nil Ring() = %d", got)
	}
	if a, b := r.Occupancy(); a != 0 || b != 0 {
		t.Fatalf("nil Occupancy() = %d,%d", a, b)
	}
	tr := r.Start("x")
	if tr != nil {
		t.Fatal("nil recorder handed out a trace")
	}
	sp := tr.StartSpan("a", "b")
	sp.End()
	if d := tr.Finish(); d != 0 {
		t.Fatalf("nil Finish() = %v", d)
	}
	if tr.ID() != 0 || tr.Name() != "" {
		t.Fatal("nil trace has identity")
	}
	if got := r.Export(); !bytes.Contains(got, []byte(`"traceEvents":[]`)) {
		t.Fatalf("nil Export() = %q", got)
	}
	// FromContext on a bare context is nil and safe.
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(empty) = %v", got)
	}
}

func TestContextRoundTrip(t *testing.T) {
	r := New(Options{})
	tr := r.Start("req")
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %v, want %v", got, tr)
	}
}

func TestRingRetention(t *testing.T) {
	c := newFakeClock(time.Millisecond)
	r := New(Options{Ring: 4, Clock: c.Now})
	// Finish 10 traces; ids 1..10, each one clock-step long.
	for i := 0; i < 10; i++ {
		tr := r.Start(fmt.Sprintf("t%d", i+1))
		tr.Finish()
	}
	recent, slowest := r.Occupancy()
	if recent != 4 || slowest != 4 {
		t.Fatalf("occupancy = %d,%d, want 4,4", recent, slowest)
	}
	// The recent ring holds the last four in finish order.
	traces := r.snapshot()[:4]
	for i, want := range []string{"t7", "t8", "t9", "t10"} {
		if traces[i].name != want {
			t.Fatalf("recent[%d] = %s, want %s", i, traces[i].name, want)
		}
	}
}

func TestSlowestRingKeepsTheSlowest(t *testing.T) {
	c := newFakeClock(time.Millisecond)
	r := New(Options{Ring: 2, Clock: c.Now})
	// Durations: each trace spans (1 + inner readings) clock steps; give
	// trace i an extra i spans so later traces are slower.
	for i := 0; i < 5; i++ {
		tr := r.Start(fmt.Sprintf("t%d", i))
		for j := 0; j < i; j++ {
			sp := tr.StartSpan("work", "test")
			sp.End()
		}
		tr.Finish()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.slowest) != 2 {
		t.Fatalf("slowest holds %d", len(r.slowest))
	}
	if r.slowest[0].name != "t4" || r.slowest[1].name != "t3" {
		t.Fatalf("slowest = %s,%s, want t4,t3", r.slowest[0].name, r.slowest[1].name)
	}
	if r.slowest[0].total <= r.slowest[1].total {
		t.Fatalf("slowest not sorted: %v <= %v", r.slowest[0].total, r.slowest[1].total)
	}
}

// TestRingBoundedUnderConcurrentWriters hammers one recorder from many
// goroutines and checks both rings stay within capacity and the export
// stays parseable — the boundedness contract of the flight recorder.
func TestRingBoundedUnderConcurrentWriters(t *testing.T) {
	const (
		ring    = 8
		writers = 16
		each    = 200
	)
	r := New(Options{Ring: ring})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr := r.Start("concurrent")
				sp := tr.StartSpan("inner", "test")
				sp2 := tr.StartSpan("inner2", "test")
				sp2.End()
				sp.End()
				tr.Finish()
			}
		}(w)
	}
	wg.Wait()
	recent, slowest := r.Occupancy()
	if recent != ring || slowest > ring {
		t.Fatalf("occupancy = %d,%d, want %d,<=%d", recent, slowest, ring, ring)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(r.Export(), &doc); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	// recent ∪ slowest after dedup: between ring and 2*ring roots, each
	// with two span events.
	if n := len(doc.TraceEvents); n < ring*3 || n > 2*ring*3 {
		t.Fatalf("exported %d events, want within [%d,%d]", n, ring*3, 2*ring*3)
	}
}

func TestSpanCapBounds(t *testing.T) {
	c := newFakeClock(time.Microsecond)
	r := New(Options{Ring: 1, Clock: c.Now})
	tr := r.Start("big")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		tr.StartSpan("s", "test").End()
	}
	tr.Finish()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.spans) != maxSpansPerTrace {
		t.Fatalf("spans = %d, want cap %d", len(tr.spans), maxSpansPerTrace)
	}
	if tr.dropped != 10 {
		t.Fatalf("dropped = %d, want 10", tr.dropped)
	}
}

// TestExportDeterministic replays the same span sequence on two
// recorders with identical deterministic clocks: the exports must be
// byte-identical.
func TestExportDeterministic(t *testing.T) {
	run := func() []byte {
		c := newFakeClock(100 * time.Microsecond)
		r := New(Options{Ring: 4, Clock: c.Now})
		for i := 0; i < 6; i++ {
			tr := r.Start(fmt.Sprintf("GET /stats#%d", i))
			sp := tr.StartSpan("space.apply", "registry")
			in := tr.StartSpan("engine.canonicalize", "engine")
			in.End()
			sp.End()
			tr.Finish()
		}
		return r.Export()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("exports differ:\n%s\n%s", a, b)
	}
	// And the document is structurally what the viewer expects.
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  uint64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// All six traces are equally long, so recent keeps 3..6 and slowest
	// keeps the tie-broken earliest 1..4: the union is all 6 traces,
	// each 1 root + 2 spans.
	if len(doc.TraceEvents) != 18 {
		t.Fatalf("events = %d, want 18", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Dur < 0 || ev.Ts < 0 {
			t.Fatalf("malformed event %+v", ev)
		}
	}
}

func TestSlowRequestLog(t *testing.T) {
	c := newFakeClock(time.Millisecond)
	var buf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&buf, nil))
	r := New(Options{Ring: 2, SlowThreshold: 3 * time.Millisecond, Logger: log, Clock: c.Now})

	fast := r.Start("fast")
	fast.Finish() // 1ms: below threshold
	slow := r.Start("slow")
	sp := slow.StartSpan("engine.insert", "engine")
	sp.End()
	slow.Finish() // 3ms: start+2 span readings+finish

	out := buf.String()
	if strings.Contains(out, "fast") {
		t.Fatalf("fast trace logged: %s", out)
	}
	if !strings.Contains(out, "slow request") || !strings.Contains(out, "name=slow") {
		t.Fatalf("slow trace not logged: %s", out)
	}
	if !strings.Contains(out, "slowest_span=engine:engine.insert") {
		t.Fatalf("slow log misses span diagnosis: %s", out)
	}
}

func TestOpenSpanClampedAtFinish(t *testing.T) {
	c := newFakeClock(time.Millisecond)
	r := New(Options{Ring: 1, Clock: c.Now})
	tr := r.Start("leaky")
	tr.StartSpan("never_ended", "test")
	tr.Finish()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if d := tr.spans[0].dur; d < 0 {
		t.Fatalf("open span survived finish with dur %d", d)
	}
	if tr.spans[0].dur > tr.total.Nanoseconds() {
		t.Fatalf("clamped span longer than trace: %d > %d", tr.spans[0].dur, tr.total.Nanoseconds())
	}
}
