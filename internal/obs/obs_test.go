package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("trikcore_test_events_total", "events", nil)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("trikcore_test_events_total", "events", nil); again != c {
		t.Fatalf("re-registration returned a different handle")
	}
	g := r.Gauge("trikcore_test_depth", "depth", Labels{"side": "left"})
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("trikcore_test_seconds", "durations", []float64{0.01, 0.1, 1}, nil)
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 5.555; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	text := string(r.Gather())
	for _, want := range []string{
		`trikcore_test_seconds_bucket{le="0.01"} 1`,
		`trikcore_test_seconds_bucket{le="0.1"} 2`,
		`trikcore_test_seconds_bucket{le="1"} 3`,
		`trikcore_test_seconds_bucket{le="+Inf"} 4`,
		`trikcore_test_seconds_count 4`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestNopRegistryIsFree(t *testing.T) {
	r := Nop()
	c := r.Counter("x_total", "x", nil)
	g := r.Gauge("y", "y", nil)
	h := r.Histogram("z_seconds", "z", DurationBuckets, nil)
	pt := NewPhaseTimer(r, "p_seconds", "p", "a", "b")
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(-1)
		h.Observe(0.5)
		pt.Start("a").End()
		StartSpan(h).End()
	})
	if allocs != 0 {
		t.Fatalf("nop instrumentation allocated %v times per run", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("nop handles accumulated state")
	}
	if got := r.Gather(); got != nil {
		t.Fatalf("nop registry gathered %q", got)
	}
}

func TestSpanObserves(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("trikcore_test_span_seconds", "spans", DurationBuckets, nil)
	sp := StartSpan(h)
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatalf("span duration %v", d)
	}
	if h.Count() != 1 {
		t.Fatalf("span did not observe (count %d)", h.Count())
	}
}

func TestPhaseTimerSeries(t *testing.T) {
	r := NewRegistry()
	pt := NewPhaseTimer(r, "trikcore_test_phase_seconds", "phases", "freeze", "support", "peel")
	pt.Start("freeze").End()
	pt.Start("unknown").End() // inert, must not panic or register
	text := string(r.Gather())
	if !strings.Contains(text, `trikcore_test_phase_seconds_count{phase="freeze"} 1`) {
		t.Errorf("freeze phase not observed:\n%s", text)
	}
	if !strings.Contains(text, `trikcore_test_phase_seconds_count{phase="peel"} 0`) {
		t.Errorf("unused phases must still be registered:\n%s", text)
	}
	if strings.Contains(text, "unknown") {
		t.Errorf("unknown phase leaked into exposition")
	}
}

// TestExpositionValid renders a registry exercising every metric kind and
// label shape and requires the validator to accept every line.
func TestExpositionValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("trikcore_a_total", "a", nil).Inc()
	r.Counter("trikcore_b_total", "b", Labels{"op": "insert"}).Add(2)
	r.Counter("trikcore_b_total", "b", Labels{"op": "delete"})
	r.Gauge("trikcore_c", "c", Labels{"zone": "x", "az": `quo"te`}).Set(-3)
	r.Histogram("trikcore_d_seconds", "d", []float64{0.1, 1}, Labels{"phase": "peel"}).Observe(0.5)
	data := r.Gather()
	n, err := ValidateExposition(data)
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, data)
	}
	// 1 + 2 counters, 1 gauge, 1 histogram with 2+1 bounds → 3 buckets
	// + sum + count = 5.
	if n != 9 {
		t.Fatalf("series = %d, want 9\n%s", n, data)
	}
}

// TestExpositionDeterministic registers the same metrics in two opposite
// orders and requires byte-identical exposition — the registry must never
// leak registration or map order.
func TestExpositionDeterministic(t *testing.T) {
	type reg struct {
		name   string
		labels Labels
	}
	regs := []reg{
		{"trikcore_z_total", nil},
		{"trikcore_m_total", Labels{"op": "a"}},
		{"trikcore_m_total", Labels{"op": "b"}},
		{"trikcore_a_total", Labels{"code": "200", "endpoint": "/stats"}},
		{"trikcore_a_total", Labels{"endpoint": "/kappa", "code": "404"}},
	}
	build := func(reverse bool) []byte {
		r := NewRegistry()
		for i := range regs {
			j := i
			if reverse {
				j = len(regs) - 1 - i
			}
			r.Counter(regs[j].name, "help", regs[j].labels).Add(uint64(len(regs[j].name)))
		}
		r.Histogram("trikcore_h_seconds", "h", []float64{0.1}, Labels{"phase": "x"}).Observe(0.05)
		return r.Gather()
	}
	fwd, rev := build(false), build(true)
	if !bytes.Equal(fwd, rev) {
		t.Fatalf("exposition depends on registration order:\n%s\n---\n%s", fwd, rev)
	}
	if _, err := ValidateExposition(fwd); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
}

// TestConcurrentHammer drives counters, gauges, histograms and the
// registry's getOrCreate path from many goroutines while a reader
// gathers continuously; run under -race (make race / make debugrace)
// this is the data-race oracle, and the final totals must be exact.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 5000
	c := r.Counter("trikcore_hammer_total", "hammer", nil)
	h := r.Histogram("trikcore_hammer_seconds", "hammer", []float64{0.25, 0.75}, nil)
	g := r.Gauge("trikcore_hammer_inflight", "hammer", nil)

	var workers, scraper sync.WaitGroup
	stop := make(chan struct{})
	scraper.Add(1)
	go func() { // concurrent scraper
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := ValidateExposition(r.Gather()); err != nil {
					t.Errorf("mid-hammer exposition invalid: %v", err)
					return
				}
			}
		}
	}()
	for i := 0; i < goroutines; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j%2) / 2) // 0 or 0.5
				g.Add(-1)
				// Exercise the registration fast path concurrently too.
				r.Counter("trikcore_hammer_total", "hammer", nil)
			}
		}()
	}
	workers.Wait()
	close(stop)
	scraper.Wait()

	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got := h.Sum(); got != float64(goroutines*perG)/4 {
		t.Fatalf("histogram sum = %g, want %g", got, float64(goroutines*perG)/4)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
}
