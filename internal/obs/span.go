package obs

import "time"

// Span is one timed section feeding a duration histogram. It is a value
// type: StartSpan captures the clock once, End observes the elapsed
// seconds. A span over a nil histogram (the disabled path, or an unknown
// phase) never reads the clock at all.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// StartSpan opens a span over h. If h is nil the span is inert: End
// returns 0 and observes nothing.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, t0: time.Now()}
}

// End closes the span, observes the elapsed time in seconds on the
// histogram, and returns the duration.
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.t0)
	s.h.Observe(d.Seconds())
	return d
}

// PhaseTimer annotates the named phases of an algorithm (decomposition's
// freeze/support/peel, batch apply's canonicalize/delete/insert) with one
// duration-histogram series per phase, label phase="<name>". The phase
// set is fixed at construction so the registry's series inventory — and
// therefore the exposition — is deterministic and the per-phase lookup
// is allocation-free. A nil *PhaseTimer (from a nil registry) is a
// no-op.
type PhaseTimer struct {
	byPhase map[string]*Histogram
}

// NewPhaseTimer registers one histogram per phase under name (buckets
// DurationBuckets) and returns the timer. With a nil registry it returns
// nil, which every method tolerates.
func NewPhaseTimer(reg *Registry, name, help string, phases ...string) *PhaseTimer {
	if reg == nil {
		return nil
	}
	pt := &PhaseTimer{byPhase: make(map[string]*Histogram, len(phases))}
	for _, ph := range phases {
		pt.byPhase[ph] = reg.Histogram(name, help, DurationBuckets, Labels{"phase": ph})
	}
	return pt
}

// Start opens a span for the named phase. Unknown phases (and nil
// timers) yield an inert span.
func (pt *PhaseTimer) Start(phase string) Span {
	if pt == nil {
		return Span{}
	}
	return StartSpan(pt.byPhase[phase])
}
