package obs

import (
	"math"
	"math/rand"
	"testing"
)

// quantileBucketError checks est against the true quantile value truth:
// the estimate must be a bound at most one bucket above the bucket that
// contains truth (the "within one bucket width" contract).
func quantileBucketError(t *testing.T, bounds []float64, est, truth float64) {
	t.Helper()
	// Index of the bucket containing the truth, and of the estimate.
	idx := func(v float64) int {
		i := 0
		for i < len(bounds) && v > bounds[i] {
			i++
		}
		return i
	}
	ti, ei := idx(truth), idx(est)
	if ei < ti || ei > ti+1 {
		t.Fatalf("estimate %g (bucket %d) not within one bucket of truth %g (bucket %d)", est, ei, truth, ti)
	}
}

// TestQuantileUniform drives the log-scaled histogram with a uniform
// distribution whose exact quantiles are known and checks
// p50/p95/p99/p999 land within one bucket width.
func TestQuantileUniform(t *testing.T) {
	h := newHistogram(LogDurationBuckets)
	const n = 100000
	// Uniform over (0, 10ms]: the exact q-quantile is q*10ms.
	for i := 1; i <= n; i++ {
		h.Observe(float64(i) / n * 0.010)
	}
	for _, q := range []float64{0.50, 0.95, 0.99, 0.999} {
		est := h.Quantile(q)
		truth := q * 0.010
		quantileBucketError(t, LogDurationBuckets, est, truth)
		if est < truth {
			t.Fatalf("q%g: estimate %g below truth %g (must be an upper bound)", q, est, truth)
		}
	}
}

// TestQuantileExponential uses an exponential distribution (the shape of
// real service latency tails) with analytically known quantiles.
func TestQuantileExponential(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	h := newHistogram(LogDurationBuckets)
	const n = 200000
	const mean = 0.001 // 1ms
	for i := 0; i < n; i++ {
		h.Observe(r.ExpFloat64() * mean)
	}
	for _, q := range []float64{0.50, 0.95, 0.99, 0.999} {
		est := h.Quantile(q)
		truth := -math.Log(1-q) * mean // exact exponential quantile
		quantileBucketError(t, LogDurationBuckets, est, truth)
	}
}

// TestQuantilePointMass: all observations equal — every quantile is the
// bound of that one bucket.
func TestQuantilePointMass(t *testing.T) {
	h := newHistogram(LogDurationBuckets)
	for i := 0; i < 1000; i++ {
		h.Observe(0.0002) // 200µs, inside the (1.6e-4, 2.5e-4] bucket
	}
	for _, q := range []float64{0.01, 0.5, 0.999, 1} {
		if got := h.Quantile(q); got != 2.5e-4 {
			t.Fatalf("q%g = %g, want 2.5e-4", q, got)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("nil Quantile = %g, want NaN", got)
	}
	h := newHistogram(LogDurationBuckets)
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty Quantile = %g, want NaN", got)
	}
	h.Observe(100) // beyond the last bound → +Inf bucket
	if got := h.Quantile(0.99); !math.IsInf(got, 1) {
		t.Fatalf("overflow Quantile = %g, want +Inf", got)
	}
}

// TestLogDurationBucketsShape pins the layout invariants the quantile
// error bound depends on: strictly increasing, ≈1.58× steps (constant
// relative bucket width), spanning 1µs to 2.5s.
func TestLogDurationBucketsShape(t *testing.T) {
	b := LogDurationBuckets
	if b[0] != 1e-6 || b[len(b)-1] != 2.5 {
		t.Fatalf("span = [%g, %g], want [1e-6, 2.5]", b[0], b[len(b)-1])
	}
	for i := 1; i < len(b); i++ {
		ratio := b[i] / b[i-1]
		if b[i] <= b[i-1] || ratio > 1.7 {
			t.Fatalf("bounds[%d]=%g / bounds[%d]=%g: ratio %g out of shape", i, b[i], i-1, b[i-1], ratio)
		}
	}
}

func TestParseValuesRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total", "Demo.", Labels{"op": "x"}).Add(7)
	reg.Gauge("demo_gauge", "Demo.", nil).Set(-3)
	h := reg.Histogram("demo_seconds", "Demo.", []float64{0.1, 1}, nil)
	h.Observe(0.05)
	h.Observe(5)

	vals, err := ParseValues(reg.Gather())
	if err != nil {
		t.Fatal(err)
	}
	if got := vals[`demo_total{op="x"}`]; got != 7 {
		t.Fatalf("counter = %g", got)
	}
	if got := vals["demo_gauge"]; got != -3 {
		t.Fatalf("gauge = %g", got)
	}
	if got := vals[`demo_seconds_bucket<le="0.1">`]; got != 1 {
		t.Fatalf("bucket 0.1 = %g", got)
	}
	if got := vals[`demo_seconds_bucket<le="+Inf">`]; got != 2 {
		t.Fatalf("bucket +Inf = %g", got)
	}
	if got := vals["demo_seconds_count"]; got != 2 {
		t.Fatalf("count = %g", got)
	}
}

func TestParseValuesRejectsGarbage(t *testing.T) {
	if _, err := ParseValues([]byte("not a metric line\n")); err == nil {
		t.Fatal("garbage parsed")
	}
}
