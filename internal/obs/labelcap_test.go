package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestLabelCapAdmitsUpToMax(t *testing.T) {
	lc := NewLabelCap(3)
	for _, v := range []string{"a", "b", "c"} {
		if got := lc.Value(v); got != v {
			t.Fatalf("Value(%q) = %q, want itself", v, got)
		}
	}
	// Budget spent: new values overflow, admitted values keep their own.
	if got := lc.Value("d"); got != Overflow {
		t.Fatalf("Value(d) = %q, want %q", got, Overflow)
	}
	if got := lc.Value("b"); got != "b" {
		t.Fatalf("admitted value lost its series: Value(b) = %q", got)
	}
	if n := lc.Admitted(); n != 3 {
		t.Fatalf("Admitted() = %d, want 3", n)
	}
}

func TestLabelCapOverflowNeverConsumesSlot(t *testing.T) {
	lc := NewLabelCap(2)
	if got := lc.Value(Overflow); got != Overflow {
		t.Fatalf("Value(%q) = %q", Overflow, got)
	}
	if n := lc.Admitted(); n != 0 {
		t.Fatalf("Overflow consumed a slot: Admitted() = %d", n)
	}
}

func TestLabelCapNilAndUnbounded(t *testing.T) {
	var nilCap *LabelCap
	if got := nilCap.Value("anything"); got != "anything" {
		t.Fatalf("nil cap altered value: %q", got)
	}
	un := NewLabelCap(0)
	for i := 0; i < 100; i++ {
		v := fmt.Sprintf("v%d", i)
		if got := un.Value(v); got != v {
			t.Fatalf("unbounded cap overflowed at %q", v)
		}
	}
}

// TestLabelCapBoundsExposition is the cardinality guard end to end: a
// registry fed through a capped label stays at max+1 series however many
// distinct values arrive.
func TestLabelCapBoundsExposition(t *testing.T) {
	reg := NewRegistry()
	lc := NewLabelCap(4)
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("tenant%d", i)
		reg.Counter("trikcore_graph_ops_total", "Ops per graph.",
			Labels{"graph": lc.Value(name)}).Inc()
	}
	expo := string(reg.Gather())
	series := 0
	for _, line := range strings.Split(expo, "\n") {
		if strings.HasPrefix(line, "trikcore_graph_ops_total{") {
			series++
		}
	}
	if series != 5 { // 4 admitted + _other
		t.Fatalf("exposition has %d series, want 5:\n%s", series, expo)
	}
	if !strings.Contains(expo, `trikcore_graph_ops_total{graph="_other"} 46`) {
		t.Fatalf("overflow bucket missing or wrong:\n%s", expo)
	}
}

func TestLabelCapConcurrent(t *testing.T) {
	lc := NewLabelCap(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v := fmt.Sprintf("v%d", i%16)
				if got := lc.Value(v); got != v && got != Overflow {
					t.Errorf("Value(%q) = %q", v, got)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := lc.Admitted(); n != 8 {
		t.Fatalf("Admitted() = %d, want 8", n)
	}
}
