// Package dngraph reimplements the DN-Graph baselines of Wang et al.
// (reference [3] of the paper): the iterative TriDN algorithm and its
// binary-search refinement BiTriDN, which compute a "valid" upper bound
// λ̄(e) on the maximum DN-Graph density λ(e) of every edge.
//
// Definition 5 of the paper: inside triangle Δ(u, v, w), vertex w supports
// λ(u, v) when λ(u, v) ≤ min(λ(u, w), λ(v, w)); λ(u, v) is valid when at
// least λ(u, v) vertices support it. Both algorithms start from the
// trivial bound λ̄(e) = support(e) and repeatedly shrink each edge's value
// to the largest k with at least k supporting triangles, until a fixed
// point. Section VI of the paper (Claim 3) proves the Triangle K-Core
// number κ(e) is exactly this converged valid λ̄(e) — the connection this
// package exists to demonstrate, together with the cost gap: TriDN and
// BiTriDN need many full passes over all triangles, while Algorithm 1
// peels once.
package dngraph

import (
	"slices"

	"trikcore/internal/graph"
)

// Result holds the converged λ̄ assignment.
type Result struct {
	// S is the frozen view the computation ran on; Lambda is indexed by
	// its dense edge ids.
	S *graph.Static
	// Lambda[i] is the converged valid λ̄ of edge i.
	Lambda []int32
	// Iterations is the number of full passes performed, including the
	// final pass that observed no change.
	Iterations int
	// Converged is false only if MaxIterations stopped the computation
	// early.
	Converged bool
}

// Options configure TriDN and BiTriDN.
type Options struct {
	// MaxIterations bounds the number of full passes; zero means run to
	// convergence.
	MaxIterations int
}

// TriDN computes valid λ̄(e) for all edges using the linear-scan update:
// each pass recomputes, for every edge, the largest k ≤ λ̄(e) supported by
// at least k triangles, scanning candidate values downward.
func TriDN(g *graph.Graph, opts Options) *Result {
	return run(g, opts, false)
}

// BiTriDN computes valid λ̄(e) like TriDN but finds each edge's new value
// by binary search over k — the paper's "improvement over TriDN".
func BiTriDN(g *graph.Graph, opts Options) *Result {
	return run(g, opts, true)
}

func run(g *graph.Graph, opts Options, binary bool) *Result {
	s := graph.FreezeStatic(g)
	m := s.NumEdges()
	lambda := make([]int32, m)
	for i := 0; i < m; i++ {
		lambda[i] = int32(s.Support(int32(i)))
	}
	r := &Result{S: s, Lambda: lambda, Converged: true}

	// Each pass is synchronous (Jacobi-style): new values are computed
	// from the previous pass's assignment for every edge, matching the
	// paper's "iterations until convergence" accounting for TriDN (e.g.
	// 66 iterations on Flickr). The update operator is monotone
	// non-increasing from the support upper bound, so the iteration
	// converges to the greatest fixed point — the valid λ̄ assignment.
	next := make([]int32, m)
	var mins []int32
	for {
		r.Iterations++
		changed := false
		for i := int32(0); i < int32(m); i++ {
			cur := lambda[i]
			if cur == 0 {
				next[i] = 0
				continue
			}
			mins = mins[:0]
			u, v := s.EdgeU[i], s.EdgeV[i]
			s.ForEachTriangleEdge(u, v, func(w, e1, e2 int32) bool {
				l1, l2 := lambda[e1], lambda[e2]
				if l2 < l1 {
					l1 = l2
				}
				mins = append(mins, l1)
				return true
			})
			if binary {
				next[i] = bestSupportedBinary(mins, cur)
			} else {
				next[i] = bestSupportedLinear(mins, cur)
			}
			if next[i] != cur {
				changed = true
			}
		}
		lambda, next = next, lambda
		r.Lambda = lambda
		if !changed {
			return r
		}
		if opts.MaxIterations > 0 && r.Iterations >= opts.MaxIterations {
			r.Converged = false
			return r
		}
	}
}

// bestSupportedLinear returns the largest k ≤ cur with at least k entries
// of mins ≥ k, scanning k downward from cur (TriDN's inner loop).
func bestSupportedLinear(mins []int32, cur int32) int32 {
	for k := cur; k > 0; k-- {
		n := int32(0)
		for _, m := range mins {
			if m >= k {
				n++
			}
		}
		if n >= k {
			return k
		}
	}
	return 0
}

// bestSupportedBinary returns the same value as bestSupportedLinear using
// a sort plus binary search (BiTriDN's inner loop). The count of entries
// ≥ k is monotone non-increasing in k, so "supported" (count ≥ k) is a
// downward-closed predicate and binary search applies.
func bestSupportedBinary(mins []int32, cur int32) int32 {
	if len(mins) == 0 || cur == 0 {
		return 0
	}
	sorted := append([]int32(nil), mins...)
	slices.SortFunc(sorted, func(a, b int32) int { return int(b) - int(a) })
	countAtLeast := func(k int32) int32 {
		// sorted is descending; count prefix ≥ k.
		lo, hi := 0, len(sorted)
		for lo < hi {
			mid := (lo + hi) / 2
			if sorted[mid] >= k {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int32(lo)
	}
	lo, hi := int32(0), cur // invariant: lo is supported, hi+1 is not
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if countAtLeast(mid) >= mid {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// LambdaOf returns λ̄(e) for a graph edge and false if the edge is absent.
func (r *Result) LambdaOf(e graph.Edge) (int32, bool) {
	u, okU := r.S.Pos[e.U]
	v, okV := r.S.Pos[e.V]
	if !okU || !okV {
		return 0, false
	}
	i := r.S.EdgeIndex(u, v)
	if i < 0 {
		return 0, false
	}
	return r.Lambda[i], true
}

// EdgeLambdas materializes λ̄ as a map keyed by canonical edges.
func (r *Result) EdgeLambdas() map[graph.Edge]int {
	out := make(map[graph.Edge]int, len(r.Lambda))
	for i, l := range r.Lambda {
		out[r.S.EdgeAt(int32(i))] = int(l)
	}
	return out
}
