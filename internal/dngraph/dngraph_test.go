package dngraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"trikcore/internal/core"
	"trikcore/internal/gen"
	"trikcore/internal/graph"
)

func randomGraph(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Vertex(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(graph.Vertex(i), graph.Vertex(j))
			}
		}
	}
	return g
}

// TestFigure5Example mirrors the paper's Figure 5 discussion: a K4 on
// B,C,D,E with a vertex A attached to B and C. The dense region carries
// λ̄ = 2 while A's edges carry λ̄ = 1.
func TestFigure5Example(t *testing.T) {
	// A=1, B=2, C=3, D=4, E=5.
	g := graph.FromPairs(2, 3, 2, 4, 2, 5, 3, 4, 3, 5, 4, 5, 1, 2, 1, 3)
	r := TriDN(g, Options{})
	for _, e := range []graph.Edge{graph.NewEdge(2, 3), graph.NewEdge(4, 5)} {
		if l, _ := r.LambdaOf(e); l != 2 {
			t.Fatalf("λ̄(%v) = %d, want 2", e, l)
		}
	}
	for _, e := range []graph.Edge{graph.NewEdge(1, 2), graph.NewEdge(1, 3)} {
		if l, _ := r.LambdaOf(e); l != 1 {
			t.Fatalf("λ̄(%v) = %d, want 1", e, l)
		}
	}
	if !r.Converged {
		t.Fatal("TriDN did not converge")
	}
}

// TestClaim3KappaIsValidLambda verifies the paper's central Section VI
// result on random graphs: the converged valid λ̄(e) of TriDN equals κ(e)
// from Algorithm 1, for every edge.
func TestClaim3KappaIsValidLambda(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(18, 0.35, seed)
		r := TriDN(g, Options{})
		d := core.Decompose(g)
		for e, l := range r.EdgeLambdas() {
			k, ok := d.KappaOf(e)
			if !ok || int(k) != l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBiTriDNMatchesTriDN(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(16, 0.4, seed)
		a := TriDN(g, Options{})
		b := BiTriDN(g, Options{})
		if len(a.Lambda) != len(b.Lambda) {
			return false
		}
		for i := range a.Lambda {
			if a.Lambda[i] != b.Lambda[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBestSupportedHelpers(t *testing.T) {
	cases := []struct {
		mins []int32
		cur  int32
		want int32
	}{
		{nil, 0, 0},
		{nil, 3, 0},
		{[]int32{5, 5, 5}, 3, 3},
		{[]int32{1, 1, 1}, 3, 1},
		{[]int32{2, 2, 1}, 3, 2},
		{[]int32{0, 0}, 2, 0},
		{[]int32{4, 3, 2, 1}, 4, 2},
	}
	for _, tc := range cases {
		if got := bestSupportedLinear(tc.mins, tc.cur); got != tc.want {
			t.Errorf("linear(%v, %d) = %d, want %d", tc.mins, tc.cur, got, tc.want)
		}
		if got := bestSupportedBinary(tc.mins, tc.cur); got != tc.want {
			t.Errorf("binary(%v, %d) = %d, want %d", tc.mins, tc.cur, got, tc.want)
		}
	}
}

func TestQuickBestSupportedAgree(t *testing.T) {
	f := func(raw []uint8, cur uint8) bool {
		mins := make([]int32, len(raw))
		for i, r := range raw {
			mins[i] = int32(r % 16)
		}
		c := int32(cur % 16)
		return bestSupportedLinear(mins, c) == bestSupportedBinary(mins, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxIterationsStopsEarly(t *testing.T) {
	// A long "staircase" graph needs several passes; a cap of 1 must
	// report non-convergence.
	g := graph.New()
	for i := graph.Vertex(0); i < 30; i++ {
		g.AddEdge(i, i+1)
		g.AddEdge(i, i+2)
	}
	r := TriDN(g, Options{MaxIterations: 1})
	if r.Converged {
		t.Fatal("capped run claims convergence")
	}
	full := TriDN(g, Options{})
	if !full.Converged || full.Iterations <= 1 {
		t.Fatalf("full run: converged=%v iterations=%d", full.Converged, full.Iterations)
	}
}

func TestLambdaOfAbsentEdge(t *testing.T) {
	g := graph.FromPairs(1, 2)
	r := TriDN(g, Options{})
	if _, ok := r.LambdaOf(graph.NewEdge(1, 3)); ok {
		t.Fatal("LambdaOf(absent) returned ok")
	}
	if _, ok := r.LambdaOf(graph.NewEdge(99, 100)); ok {
		t.Fatal("LambdaOf(absent vertices) returned ok")
	}
}

// TestIterationsGrowWithPropagationDistance checks the cost
// characteristic the paper exploits (Section VI, Table II footnote: 66
// iterations for Flickr): iterative DN-Graph refinement needs one pass per
// hop that density deficiency must travel, while κ peeling handles any
// graph in a single pass. Removing one edge from a triangulated torus
// collapses its 2-core, and the collapse propagates around the ring.
func TestIterationsGrowWithPropagationDistance(t *testing.T) {
	short := gen.TriangulatedTorus(6, 5)
	short.RemoveEdge(0, 5)
	long := gen.TriangulatedTorus(24, 5)
	long.RemoveEdge(0, 5)
	rs := TriDN(short, Options{})
	rl := TriDN(long, Options{})
	if rs.Iterations < 3 || rl.Iterations <= rs.Iterations {
		t.Fatalf("iterations: short torus %d, long torus %d; want multi-pass and growing",
			rs.Iterations, rl.Iterations)
	}
	d := core.Decompose(long)
	for e, l := range rl.EdgeLambdas() {
		k, _ := d.KappaOf(e)
		if int(k) != l {
			t.Fatalf("torus: λ̄(%v)=%d, κ=%d", e, l, k)
		}
	}
}
