package core

import (
	"slices"
	"sort"

	"trikcore/internal/graph"
)

// CoreSubgraph returns the subgraph formed by all edges with κ ≥ k. By
// Claim 2 of the paper this subgraph is a Triangle K-Core with Triangle
// K-Core number at least k (every surviving edge keeps at least k
// triangles whose other edges also survive).
func (d *Decomposition) CoreSubgraph(k int32) *graph.Graph {
	sub := graph.New()
	for i, kv := range d.Kappa {
		if kv >= k {
			sub.AddEdgeE(d.S.EdgeAt(int32(i)))
		}
	}
	return sub
}

// MaxCoreOf returns the maximum Triangle K-Core associated with edge e
// (Definition 4) as the triangle-connected component of e within the
// subgraph of edges with κ ≥ κ(e). The boolean is false if e is not an
// edge of the decomposed graph.
//
// Restricting to the triangle-connected component keeps the result a
// coherent community around e rather than the union of all equally dense
// regions of the graph; the component is still a Triangle K-Core with
// number κ(e) and contains e, hence maximal for e.
func (d *Decomposition) MaxCoreOf(e graph.Edge) (*graph.Graph, bool) {
	u, okU := d.S.Pos[e.U]
	v, okV := d.S.Pos[e.V]
	if !okU || !okV {
		return nil, false
	}
	start := d.S.EdgeIndex(u, v)
	if start < 0 {
		return nil, false
	}
	k := d.Kappa[start]
	comp := d.triangleComponent(start, k)
	sub := graph.New()
	for _, i := range comp {
		sub.AddEdgeE(d.S.EdgeAt(i))
	}
	return sub, true
}

// triangleComponent returns the edge indices reachable from start through
// triangles whose three edges all have κ ≥ k.
func (d *Decomposition) triangleComponent(start int32, k int32) []int32 {
	seen := map[int32]bool{start: true}
	queue := []int32{start}
	for len(queue) > 0 {
		ei := queue[0]
		queue = queue[1:]
		u, v := d.S.EdgeU[ei], d.S.EdgeV[ei]
		d.S.ForEachTriangleEdge(u, v, func(w, e1, e2 int32) bool {
			if d.Kappa[e1] < k || d.Kappa[e2] < k {
				return true
			}
			for _, nxt := range [2]int32{e1, e2} {
				if !seen[nxt] {
					seen[nxt] = true
					queue = append(queue, nxt)
				}
			}
			return true
		})
	}
	out := make([]int32, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	slices.Sort(out)
	return out
}

// Communities returns the triangle-connected components of the κ ≥ k
// subgraph, each as a sorted list of edges, ordered by first edge. These
// are the clique-like communities the density plots expose as plateaus.
func (d *Decomposition) Communities(k int32) [][]graph.Edge {
	seen := make(map[int32]bool)
	var comms [][]graph.Edge
	for i := int32(0); i < int32(len(d.Kappa)); i++ {
		if d.Kappa[i] < k || seen[i] {
			continue
		}
		comp := d.triangleComponent(i, k)
		edges := make([]graph.Edge, 0, len(comp))
		for _, ei := range comp {
			seen[ei] = true
			edges = append(edges, d.S.EdgeAt(ei))
		}
		sort.Slice(edges, func(a, b int) bool { return edges[a].Less(edges[b]) })
		comms = append(comms, edges)
	}
	return comms
}

// CoreTriangles implements the paper's Rule 1: given the processing order
// of Algorithm 1, the triangles belonging to e's maximum Triangle K-Core
// are the last κ(e) triangles on e in increasing order of "process time"
// (the smallest order value among a triangle's edges). It returns those
// triangles; the boolean is false if e is absent.
//
// This is the mechanism by which the paper avoids storing per-edge core
// membership (AddToCore / DelFromCore bookkeeping) explicitly.
func (d *Decomposition) CoreTriangles(e graph.Edge) ([]graph.Triangle, bool) {
	u, okU := d.S.Pos[e.U]
	v, okV := d.S.Pos[e.V]
	if !okU || !okV {
		return nil, false
	}
	ei := d.S.EdgeIndex(u, v)
	if ei < 0 {
		return nil, false
	}
	type timed struct {
		t    graph.Triangle
		when int32
	}
	var tris []timed
	d.S.ForEachTriangleEdge(u, v, func(w, e1, e2 int32) bool {
		when := d.OrderOf[ei]
		if d.OrderOf[e1] < when {
			when = d.OrderOf[e1]
		}
		if d.OrderOf[e2] < when {
			when = d.OrderOf[e2]
		}
		tris = append(tris, timed{
			t:    graph.NewTriangle(d.S.OrigID[u], d.S.OrigID[v], d.S.OrigID[w]),
			when: when,
		})
		return true
	})
	sort.Slice(tris, func(a, b int) bool { return tris[a].when < tris[b].when })
	k := int(d.Kappa[ei])
	if k > len(tris) {
		k = len(tris) // cannot happen for a correct decomposition
	}
	out := make([]graph.Triangle, 0, k)
	for _, tt := range tris[len(tris)-k:] {
		out = append(out, tt.t)
	}
	return out, true
}
