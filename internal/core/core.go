// Package core implements the paper's primary contribution: Triangle
// K-Core decomposition (Algorithm 1).
//
// A Triangle K-Core (Definition 3) is a subgraph in which every edge is
// contained in at least k triangles of the subgraph. The maximum Triangle
// K-Core number κ(e) of an edge (Definition 4) is the largest such k over
// all subgraphs containing the edge. Decompose computes κ(e) for every
// edge with a localized peeling algorithm whose running time is linear in
// the number of triangles of the graph.
//
// The algorithm mirrors Algorithm 1 of the paper: initialize each edge's
// upper bound κ̃(e) to its triangle support, bucket-sort edges by κ̃, then
// repeatedly process the edge with minimum κ̃ — its bound is now exact
// (Claim 2) — and decrement the bounds of the other two edges of each
// still-unprocessed triangle through it (steps 11–17, guarded by the
// Theorem 1 comparison in step 13).
package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"trikcore/internal/bucket"
	"trikcore/internal/graph"
	"trikcore/internal/obs"
)

// Decomposition is the result of a Triangle K-Core decomposition of a
// graph. Edge state is indexed by the dense edge ids of the frozen Static
// view S; helpers translate to and from graph.Edge values.
type Decomposition struct {
	// S is the frozen view of the input graph the decomposition ran on.
	S *graph.Static
	// Kappa[i] is κ(edge i): the maximum Triangle K-Core number of edge i.
	Kappa []int32
	// Order lists edge indices in the order Algorithm 1 processed them
	// (ascending κ̃ at pop time). Order[p] is the edge processed at step p.
	Order []int32
	// OrderOf is the inverse permutation of Order: OrderOf[i] is the
	// "time stamp" at which edge i was processed (the paper's e.order).
	OrderOf []int32
	// Support[i] is the initial triangle support of edge i — the paper's
	// κ̃ upper bound before peeling.
	Support []int32
	// MaxKappa is the largest κ value in the graph; MaxKappa+2 bounds the
	// largest clique (a n-clique is a Triangle (n-2)-Core).
	MaxKappa int32
}

// Phase names Options.Phases observes, one per stage of Algorithm 1's
// pipeline: freezing the CSR view, the triangle-support computation, and
// the bucket peel.
const (
	PhaseFreeze  = "freeze"
	PhaseSupport = "support"
	PhasePeel    = "peel"
)

// Options configure Decompose.
type Options struct {
	// Parallelism bounds the number of goroutines used for the initial
	// support computation. Zero means GOMAXPROCS. The peeling phase is
	// inherently sequential and always runs on one goroutine.
	Parallelism int
	// Phases, when non-nil, receives one duration observation per
	// decomposition phase (PhaseFreeze, PhaseSupport, PhasePeel). A nil
	// timer costs nothing.
	Phases *obs.PhaseTimer
}

// Decompose runs Algorithm 1 on g and returns κ(e) for every edge.
func Decompose(g *graph.Graph) *Decomposition {
	return DecomposeWith(g, Options{})
}

// DecomposeWith is Decompose with explicit options.
func DecomposeWith(g *graph.Graph, opts Options) *Decomposition {
	sp := opts.Phases.Start(PhaseFreeze)
	s := graph.FreezeStatic(g)
	sp.End()
	return DecomposeStatic(s, opts)
}

// DecomposeStatic runs Algorithm 1 on an already-frozen graph view.
func DecomposeStatic(s *graph.Static, opts Options) *Decomposition {
	sp := opts.Phases.Start(PhaseSupport)
	support := ComputeSupport(s, opts.Parallelism)
	sp.End()
	sp = opts.Phases.Start(PhasePeel)
	d := DecomposeWithSupport(s, support)
	sp.End()
	return d
}

// DecomposeWithSupport runs only the peeling phase of Algorithm 1
// (steps 7–18) given precomputed edge supports. Table III's "Re-compute"
// column times exactly this phase, matching the paper's accounting.
// The support slice is not mutated.
func DecomposeWithSupport(s *graph.Static, support []int32) *Decomposition {
	m := s.NumEdges()
	d := &Decomposition{
		S:       s,
		Kappa:   make([]int32, m),
		Order:   make([]int32, 0, m),
		OrderOf: make([]int32, m),
		Support: append([]int32(nil), support...),
	}

	// Steps 7–18: peel edges in increasing order of the κ̃ upper bound.
	// Peeled edges are removed from the live adjacency, so the merge in
	// each step scans only unprocessed edges — triangles through an
	// already-processed edge (step 17) never surface, and rows shrink as
	// the peel progresses.
	la := graph.NewLiveAdj(s)
	q := bucket.New(support)
	for {
		et, kt, ok := q.PopMin()
		if !ok {
			break
		}
		d.Kappa[et] = kt
		d.OrderOf[et] = int32(len(d.Order))
		d.Order = append(d.Order, et)
		if kt > d.MaxKappa {
			d.MaxKappa = kt
		}
		u, v := s.EdgeU[et], s.EdgeV[et]
		la.RemoveEdge(et)
		la.ForEachTriangleEdge(u, v, func(w, e1, e2 int32) bool {
			// Step 13: only bounds strictly above κ(e_t) shrink; smaller
			// or equal bounds already account for this triangle's loss.
			if q.Val(e1) > kt {
				q.Dec(e1)
			}
			if q.Val(e2) > kt {
				q.Dec(e2)
			}
			return true
		})
	}
	return d
}

// supportBlock is the edge-block granularity of the work-stealing support
// computation. Blocks are handed out through an atomic counter rather than
// pre-chunked ranges: on power-law graphs the support cost of an edge is
// proportional to its endpoint degrees, so static chunking strands the
// workers that drew low-degree ranges while a hub-heavy range runs alone.
const supportBlock = 512

// ComputeSupport returns the triangle support of every edge of s (the
// κ̃ initialization of Algorithm 1, steps 1–5). It lists each triangle
// exactly once through the degree-oriented kernel and credits all three
// of its edges, rather than intersecting full adjacency rows per edge —
// a 3× reduction in triangle visits plus oriented rows bounded by O(√M).
// With parallelism above one, workers steal fixed-size edge blocks from a
// shared atomic counter (static chunking strands workers on power-law
// degree skew) and publish credits with atomic adds.
func ComputeSupport(s *graph.Static, parallelism int) []int32 {
	m := s.NumEdges()
	support := make([]int32, m)
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > (m+supportBlock-1)/supportBlock {
		workers = (m + supportBlock - 1) / supportBlock
	}
	if workers <= 1 {
		for i := int32(0); i < int32(m); i++ {
			s.ForEachOrientedTriangle(i, func(e1, e2 int32) bool {
				support[i]++
				support[e1]++
				support[e2]++
				return true
			})
		}
		return support
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int32(next.Add(supportBlock)) - supportBlock
				if lo >= int32(m) {
					return
				}
				hi := lo + supportBlock
				if hi > int32(m) {
					hi = int32(m)
				}
				for i := lo; i < hi; i++ {
					s.ForEachOrientedTriangle(i, func(e1, e2 int32) bool {
						atomic.AddInt32(&support[i], 1)
						atomic.AddInt32(&support[e1], 1)
						atomic.AddInt32(&support[e2], 1)
						return true
					})
				}
			}
		}()
	}
	wg.Wait()
	return support
}

// KappaOf returns κ(e) for a graph edge, and false if e is not an edge of
// the decomposed graph.
func (d *Decomposition) KappaOf(e graph.Edge) (int32, bool) {
	u, okU := d.S.Pos[e.U]
	v, okV := d.S.Pos[e.V]
	if !okU || !okV {
		return 0, false
	}
	i := d.S.EdgeIndex(u, v)
	if i < 0 {
		return 0, false
	}
	return d.Kappa[i], true
}

// EdgeKappas materializes κ as a map keyed by canonical edges.
func (d *Decomposition) EdgeKappas() map[graph.Edge]int {
	out := make(map[graph.Edge]int, len(d.Kappa))
	for i, k := range d.Kappa {
		out[d.S.EdgeAt(int32(i))] = int(k)
	}
	return out
}

// CoCliqueSizes returns the paper's plotting quantity per edge:
// co_clique_size(e) = κ(e) + 2, the Triangle K-Core proxy for the largest
// clique containing e (Algorithm 3, step 2).
func (d *Decomposition) CoCliqueSizes() map[graph.Edge]int {
	out := make(map[graph.Edge]int, len(d.Kappa))
	for i, k := range d.Kappa {
		out[d.S.EdgeAt(int32(i))] = int(k) + 2
	}
	return out
}

// KappaHistogram returns, for each κ value present, the number of edges
// carrying it.
func (d *Decomposition) KappaHistogram() map[int32]int {
	h := make(map[int32]int)
	for _, k := range d.Kappa {
		h[k]++
	}
	return h
}
