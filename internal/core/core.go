// Package core implements the paper's primary contribution: Triangle
// K-Core decomposition (Algorithm 1).
//
// A Triangle K-Core (Definition 3) is a subgraph in which every edge is
// contained in at least k triangles of the subgraph. The maximum Triangle
// K-Core number κ(e) of an edge (Definition 4) is the largest such k over
// all subgraphs containing the edge. Decompose computes κ(e) for every
// edge with a localized peeling algorithm whose running time is linear in
// the number of triangles of the graph.
//
// The algorithm mirrors Algorithm 1 of the paper: initialize each edge's
// upper bound κ̃(e) to its triangle support, bucket-sort edges by κ̃, then
// repeatedly process the edge with minimum κ̃ — its bound is now exact
// (Claim 2) — and decrement the bounds of the other two edges of each
// still-unprocessed triangle through it (steps 11–17, guarded by the
// Theorem 1 comparison in step 13).
package core

import (
	"trikcore/internal/graph"
	"trikcore/internal/obs"
)

// Decomposition is the result of a Triangle K-Core decomposition of a
// graph. Edge state is indexed by the dense edge ids of the frozen Static
// view S; helpers translate to and from graph.Edge values.
type Decomposition struct {
	// S is the frozen view of the input graph the decomposition ran on.
	S *graph.Static
	// Kappa[i] is κ(edge i): the maximum Triangle K-Core number of edge i.
	Kappa []int32
	// Order lists edge indices in the order Algorithm 1 processed them
	// (ascending κ̃ at pop time). Order[p] is the edge processed at step p.
	Order []int32
	// OrderOf is the inverse permutation of Order: OrderOf[i] is the
	// "time stamp" at which edge i was processed (the paper's e.order).
	OrderOf []int32
	// Support[i] is the initial triangle support of edge i — the paper's
	// κ̃ upper bound before peeling.
	Support []int32
	// MaxKappa is the largest κ value in the graph; MaxKappa+2 bounds the
	// largest clique (a n-clique is a Triangle (n-2)-Core).
	MaxKappa int32
}

// Phase names Options.Phases observes, one per stage of Algorithm 1's
// pipeline: freezing the CSR view, the triangle-support computation, and
// the bucket peel.
const (
	PhaseFreeze  = "freeze"
	PhaseSupport = "support"
	PhasePeel    = "peel"
)

// Options configure Decompose.
type Options struct {
	// Parallelism bounds the number of goroutines used for the initial
	// support computation. Zero means GOMAXPROCS. The peeling phase is
	// inherently sequential and always runs on one goroutine.
	Parallelism int
	// Phases, when non-nil, receives one duration observation per
	// decomposition phase (PhaseFreeze, PhaseSupport, PhasePeel). A nil
	// timer costs nothing.
	Phases *obs.PhaseTimer
}

// Decompose runs Algorithm 1 on g and returns κ(e) for every edge.
func Decompose(g *graph.Graph) *Decomposition {
	return DecomposeWith(g, Options{})
}

// DecomposeWith is Decompose with explicit options.
func DecomposeWith(g *graph.Graph, opts Options) *Decomposition {
	sp := opts.Phases.Start(PhaseFreeze)
	s := graph.FreezeStatic(g)
	sp.End()
	return DecomposeStatic(s, opts)
}

// DecomposeStatic runs Algorithm 1 on an already-frozen graph view.
func DecomposeStatic(s *graph.Static, opts Options) *Decomposition {
	sp := opts.Phases.Start(PhaseSupport)
	support := ComputeSupport(s, opts.Parallelism)
	sp.End()
	sp = opts.Phases.Start(PhasePeel)
	d := DecomposeWithSupport(s, support)
	sp.End()
	return d
}

// DecomposeWithSupport runs only the peeling phase of Algorithm 1
// (steps 7–18) given precomputed edge supports. Table III's "Re-compute"
// column times exactly this phase, matching the paper's accounting.
// The support slice is not mutated.
//
// Peeled edges are removed from the live adjacency, so the merge in
// each step scans only unprocessed edges — triangles through an
// already-processed edge (step 17) never surface, and rows shrink as
// the peel progresses.
func DecomposeWithSupport(s *graph.Static, support []int32) *Decomposition {
	r := Peel(s, graph.NewLiveAdj(s), support)
	return &Decomposition{
		S:        s,
		Kappa:    r.Kappa,
		Order:    r.Order,
		OrderOf:  r.OrderOf,
		Support:  append([]int32(nil), support...),
		MaxKappa: r.MaxKappa,
	}
}

// ComputeSupport returns the triangle support of every edge of s. It is
// ComputeSupportView specialized to the concrete frozen view; see that
// function for the kernel's shape.
func ComputeSupport(s *graph.Static, parallelism int) []int32 {
	return ComputeSupportView(s, parallelism)
}

// KappaOf returns κ(e) for a graph edge, and false if e is not an edge of
// the decomposed graph.
func (d *Decomposition) KappaOf(e graph.Edge) (int32, bool) {
	u, okU := d.S.Pos[e.U]
	v, okV := d.S.Pos[e.V]
	if !okU || !okV {
		return 0, false
	}
	i := d.S.EdgeIndex(u, v)
	if i < 0 {
		return 0, false
	}
	return d.Kappa[i], true
}

// EdgeKappas materializes κ as a map keyed by canonical edges.
func (d *Decomposition) EdgeKappas() map[graph.Edge]int {
	out := make(map[graph.Edge]int, len(d.Kappa))
	for i, k := range d.Kappa {
		out[d.S.EdgeAt(int32(i))] = int(k)
	}
	return out
}

// CoCliqueSizes returns the paper's plotting quantity per edge:
// co_clique_size(e) = κ(e) + 2, the Triangle K-Core proxy for the largest
// clique containing e (Algorithm 3, step 2).
func (d *Decomposition) CoCliqueSizes() map[graph.Edge]int {
	out := make(map[graph.Edge]int, len(d.Kappa))
	for i, k := range d.Kappa {
		out[d.S.EdgeAt(int32(i))] = int(k) + 2
	}
	return out
}

// KappaHistogram returns, for each κ value present, the number of edges
// carrying it.
func (d *Decomposition) KappaHistogram() map[int32]int {
	h := make(map[int32]int)
	for _, k := range d.Kappa {
		h[k]++
	}
	return h
}
