package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"trikcore/internal/graph"
	"trikcore/internal/reference"
)

func randomGraph(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Vertex(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(graph.Vertex(i), graph.Vertex(j))
			}
		}
	}
	return g
}

func clique(n int) *graph.Graph {
	g := graph.New()
	for i := graph.Vertex(0); i < graph.Vertex(n); i++ {
		for j := i + 1; j < graph.Vertex(n); j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// TestFigure2Example reproduces the worked example of Algorithm 1
// (Figure 2): vertices A..E mapped to 1..5, the edge list
// {AB, AC, BC, BD, BE, CD, CE, DE}. The paper derives κ(AB) = κ(AC) = 1
// and κ = 2 for every other edge.
func TestFigure2Example(t *testing.T) {
	g := graph.FromPairs(
		1, 2, // AB
		1, 3, // AC
		2, 3, // BC
		2, 4, // BD
		2, 5, // BE
		3, 4, // CD
		3, 5, // CE
		4, 5, // DE
	)
	d := Decompose(g)
	want := map[graph.Edge]int32{
		graph.NewEdge(1, 2): 1,
		graph.NewEdge(1, 3): 1,
		graph.NewEdge(2, 3): 2,
		graph.NewEdge(2, 4): 2,
		graph.NewEdge(2, 5): 2,
		graph.NewEdge(3, 4): 2,
		graph.NewEdge(3, 5): 2,
		graph.NewEdge(4, 5): 2,
	}
	for e, k := range want {
		got, ok := d.KappaOf(e)
		if !ok || got != k {
			t.Errorf("κ(%v) = %d (ok=%v), want %d", e, got, ok, k)
		}
	}
	// Initial κ̃ upper bounds from the paper: AB(1), AC(1), BD(2), BE(2),
	// CD(2), CE(2), DE(2), BC(3).
	wantSup := map[graph.Edge]int32{
		graph.NewEdge(1, 2): 1, graph.NewEdge(1, 3): 1, graph.NewEdge(2, 3): 3,
		graph.NewEdge(2, 4): 2, graph.NewEdge(2, 5): 2, graph.NewEdge(3, 4): 2,
		graph.NewEdge(3, 5): 2, graph.NewEdge(4, 5): 2,
	}
	for e, s := range wantSup {
		i := d.S.EdgeIndex(d.S.Pos[e.U], d.S.Pos[e.V])
		if d.Support[i] != s {
			t.Errorf("support(%v) = %d, want %d", e, d.Support[i], s)
		}
	}
	if d.MaxKappa != 2 {
		t.Fatalf("MaxKappa = %d, want 2", d.MaxKappa)
	}
}

// TestFigure1TriangleKCore checks the paper's Figure 1(b) claim shape: a
// 5-vertex Triangle K-Core with number 2 (K5 minus one edge) versus the
// 5-cycle K-Core of Figure 1(a) which has no triangles at all.
func TestFigure1TriangleKCore(t *testing.T) {
	k5e := clique(5)
	k5e.RemoveEdge(3, 4)
	d := Decompose(k5e)
	for _, e := range k5e.Edges() {
		k, _ := d.KappaOf(e)
		if k != 2 {
			t.Fatalf("κ(%v) = %d, want 2 on K5 minus an edge", e, k)
		}
	}
}

// TestCliqueKappa checks the identity stated in Section III: an n-vertex
// clique is an n-vertex Triangle K-Core with number n-2.
func TestCliqueKappa(t *testing.T) {
	for n := 3; n <= 9; n++ {
		d := Decompose(clique(n))
		for i, k := range d.Kappa {
			if int(k) != n-2 {
				t.Fatalf("K%d: κ(%v) = %d, want %d", n, d.S.EdgeAt(int32(i)), k, n-2)
			}
		}
	}
}

func TestTriangleFreeGraph(t *testing.T) {
	g := graph.FromPairs(1, 2, 2, 3, 3, 4, 4, 1) // 4-cycle
	d := Decompose(g)
	for _, k := range d.Kappa {
		if k != 0 {
			t.Fatal("triangle-free graph must have all κ = 0")
		}
	}
	if d.MaxKappa != 0 {
		t.Fatalf("MaxKappa = %d", d.MaxKappa)
	}
}

func TestEmptyGraph(t *testing.T) {
	d := Decompose(graph.New())
	if len(d.Kappa) != 0 || d.MaxKappa != 0 || len(d.Order) != 0 {
		t.Fatal("empty graph decomposition wrong")
	}
	if _, ok := d.KappaOf(graph.NewEdge(1, 2)); ok {
		t.Fatal("KappaOf on empty graph returned ok")
	}
}

func TestQuickMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(22, 0.25, seed)
		d := Decompose(g)
		want := reference.TriangleCore(g)
		for e, k := range want {
			got, ok := d.KappaOf(e)
			if !ok || int(got) != k {
				return false
			}
		}
		return len(want) == len(d.Kappa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDenseMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(14, 0.6, seed)
		d := Decompose(g)
		want := reference.TriangleCore(g)
		for e, k := range want {
			got, _ := d.KappaOf(e)
			if int(got) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem1 verifies the paper's Theorem 1 on the reconstructed core
// membership: every triangle in e's maximum Triangle K-Core has its other
// two edges with κ no smaller than κ(e).
func TestTheorem1(t *testing.T) {
	g := randomGraph(30, 0.25, 11)
	d := Decompose(g)
	for _, e := range g.Edges() {
		tris, ok := d.CoreTriangles(e)
		if !ok {
			t.Fatalf("CoreTriangles(%v) not ok", e)
		}
		ke, _ := d.KappaOf(e)
		if int32(len(tris)) != ke {
			t.Fatalf("edge %v: %d core triangles, want κ=%d", e, len(tris), ke)
		}
		for _, tr := range tris {
			for _, oe := range tr.Edges() {
				if oe == e {
					continue
				}
				ko, ok := d.KappaOf(oe)
				if !ok {
					t.Fatalf("core triangle %v uses absent edge %v", tr, oe)
				}
				if ko < ke {
					t.Fatalf("Theorem 1 violated: κ(%v)=%d < κ(%v)=%d in %v", oe, ko, e, ke, tr)
				}
			}
		}
	}
}

func TestKappaAtMostSupport(t *testing.T) {
	g := randomGraph(35, 0.2, 3)
	d := Decompose(g)
	for i, k := range d.Kappa {
		if k > d.Support[i] {
			t.Fatalf("κ %d exceeds support %d", k, d.Support[i])
		}
	}
}

func TestCoreSubgraphIsTriangleKCore(t *testing.T) {
	g := randomGraph(40, 0.2, 21)
	d := Decompose(g)
	for k := int32(1); k <= d.MaxKappa; k++ {
		sub := d.CoreSubgraph(k)
		sub.ForEachEdge(func(e graph.Edge) bool {
			if int32(sub.SupportE(e)) < k {
				t.Fatalf("k=%d: edge %v has support %d inside core subgraph", k, e, sub.SupportE(e))
			}
			return true
		})
	}
}

func TestMaxCoreOf(t *testing.T) {
	g := randomGraph(30, 0.3, 9)
	d := Decompose(g)
	for _, e := range g.Edges() {
		ke, _ := d.KappaOf(e)
		sub, ok := d.MaxCoreOf(e)
		if !ok {
			t.Fatalf("MaxCoreOf(%v) not ok", e)
		}
		if !sub.HasEdgeE(e) {
			t.Fatalf("MaxCoreOf(%v) does not contain the edge", e)
		}
		sub.ForEachEdge(func(f graph.Edge) bool {
			if int32(sub.SupportE(f)) < ke {
				t.Fatalf("edge %v has support %d < κ(%v)=%d inside MaxCoreOf", f, sub.SupportE(f), e, ke)
			}
			return true
		})
	}
	if _, ok := d.MaxCoreOf(graph.NewEdge(500, 501)); ok {
		t.Fatal("MaxCoreOf of absent edge returned ok")
	}
}

func TestCommunities(t *testing.T) {
	// Two disjoint K4s joined by a single bridge edge: at k=2 the
	// communities are exactly the two cliques.
	g := graph.New()
	for i := graph.Vertex(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
			g.AddEdge(i+10, j+10)
		}
	}
	g.AddEdge(3, 10)
	d := Decompose(g)
	comms := d.Communities(2)
	if len(comms) != 2 {
		t.Fatalf("got %d communities at k=2, want 2", len(comms))
	}
	for _, c := range comms {
		if len(c) != 6 {
			t.Fatalf("community has %d edges, want 6 (a K4)", len(c))
		}
	}
	if got := d.Communities(3); len(got) != 0 {
		t.Fatalf("communities at k=3 = %v, want none", got)
	}
}

func TestParallelSupportMatchesSerial(t *testing.T) {
	g := randomGraph(60, 0.15, 31)
	serial := DecomposeWith(g, Options{Parallelism: 1})
	parallel := DecomposeWith(g, Options{Parallelism: 8})
	for i := range serial.Kappa {
		if serial.Kappa[i] != parallel.Kappa[i] {
			t.Fatalf("edge %d: serial κ %d, parallel κ %d", i, serial.Kappa[i], parallel.Kappa[i])
		}
		if serial.Support[i] != parallel.Support[i] {
			t.Fatalf("edge %d: support mismatch", i)
		}
	}
}

// TestWorkStealingSupportMatchesSerial uses a graph with several thousand
// edges so the block counter actually hands out multiple supportBlock
// chunks — small graphs clamp the worker count to one and would leave the
// work-stealing path (and its atomic credits) unexercised under -race.
func TestWorkStealingSupportMatchesSerial(t *testing.T) {
	g := randomGraph(260, 0.1, 97)
	s := graph.FreezeStatic(g)
	if s.NumEdges() <= 4*supportBlock {
		t.Fatalf("fixture too small (%d edges) to cover work stealing", s.NumEdges())
	}
	serial := ComputeSupport(s, 1)
	for _, workers := range []int{2, 4, 7} {
		stolen := ComputeSupport(s, workers)
		for i := range serial {
			if serial[i] != stolen[i] {
				t.Fatalf("workers=%d edge %d: support %d, serial says %d",
					workers, i, stolen[i], serial[i])
			}
		}
	}
}

func TestOrderIsPermutation(t *testing.T) {
	g := randomGraph(25, 0.3, 8)
	d := Decompose(g)
	if len(d.Order) != len(d.Kappa) {
		t.Fatal("Order length mismatch")
	}
	seen := make([]bool, len(d.Order))
	for p, e := range d.Order {
		if seen[e] {
			t.Fatal("Order repeats an edge")
		}
		seen[e] = true
		if d.OrderOf[e] != int32(p) {
			t.Fatal("OrderOf is not the inverse of Order")
		}
	}
}

// TestOrderKappaMonotone checks that edges are processed in ascending κ
// order — the invariant Claim 2's proof relies on.
func TestOrderKappaMonotone(t *testing.T) {
	g := randomGraph(30, 0.3, 77)
	d := Decompose(g)
	prev := int32(0)
	for _, e := range d.Order {
		if d.Kappa[e] < prev {
			t.Fatalf("processing order not ascending in κ: %d after %d", d.Kappa[e], prev)
		}
		prev = d.Kappa[e]
	}
}

func TestEdgeKappasAndHistogram(t *testing.T) {
	g := graph.FromPairs(1, 2, 2, 3, 3, 1, 3, 4)
	d := Decompose(g)
	m := d.EdgeKappas()
	if len(m) != 4 {
		t.Fatalf("EdgeKappas has %d entries", len(m))
	}
	if m[graph.NewEdge(1, 2)] != 1 || m[graph.NewEdge(3, 4)] != 0 {
		t.Fatalf("EdgeKappas wrong: %v", m)
	}
	cc := d.CoCliqueSizes()
	if cc[graph.NewEdge(1, 2)] != 3 || cc[graph.NewEdge(3, 4)] != 2 {
		t.Fatalf("CoCliqueSizes wrong: %v", cc)
	}
	h := d.KappaHistogram()
	if h[1] != 3 || h[0] != 1 {
		t.Fatalf("KappaHistogram wrong: %v", h)
	}
}
