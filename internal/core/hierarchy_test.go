package core

import (
	"testing"

	"trikcore/internal/graph"
)

func TestHierarchyNestedCliques(t *testing.T) {
	// A 6-clique sharing a triangle with a separate sparse triangle ring,
	// producing levels 1..4 nested around the clique.
	g := clique(6)
	g.AddEdge(0, 10)
	g.AddEdge(1, 10) // triangle (0,1,10) hangs off the clique
	d := Decompose(g)
	roots := d.Hierarchy()
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1 connected level-1 community", len(roots))
	}
	root := roots[0]
	if root.K != 1 {
		t.Fatalf("root level %d", root.K)
	}
	// Every edge is in some triangle here: the root holds all 17 edges.
	if root.Size() != g.NumEdges() {
		t.Fatalf("root has %d edges, want %d", root.Size(), g.NumEdges())
	}
	// Depth: the 6-clique has κ=4 edges, so the chain goes 1→2→3→4.
	depth := 0
	for n := root; ; {
		depth++
		if len(n.Children) == 0 {
			break
		}
		if len(n.Children) != 1 {
			t.Fatalf("level %d has %d children, want 1", n.K, len(n.Children))
		}
		n = n.Children[0]
	}
	if depth != 4 {
		t.Fatalf("hierarchy depth %d, want 4", depth)
	}
	leaves := root.Leaves()
	if len(leaves) != 1 || leaves[0].K != 4 {
		t.Fatalf("leaves = %v", leaves)
	}
	// The densest leaf is exactly the 6-clique.
	verts := leaves[0].Vertices()
	if len(verts) != 6 || verts[0] != 0 || verts[5] != 5 {
		t.Fatalf("leaf vertices = %v, want the clique", verts)
	}
	if leaves[0].Size() != 15 {
		t.Fatalf("leaf has %d edges, want 15", leaves[0].Size())
	}
}

func TestHierarchyTwoComponents(t *testing.T) {
	// Two disjoint K4s: two roots, each with one level-2 child.
	g := clique(4)
	for i := graph.Vertex(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i+10, j+10)
		}
	}
	d := Decompose(g)
	roots := d.Hierarchy()
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2", len(roots))
	}
	for _, r := range roots {
		if r.Size() != 6 || len(r.Children) != 1 || r.Children[0].K != 2 {
			t.Fatalf("root malformed: %+v", r)
		}
	}
}

func TestHierarchyNestingInvariant(t *testing.T) {
	// Property: every child's edge set is a subset of its parent's.
	g := randomGraph(40, 0.3, 12)
	d := Decompose(g)
	var check func(n *HierarchyNode)
	check = func(n *HierarchyNode) {
		in := make(map[graph.Edge]bool, len(n.Edges))
		for _, e := range n.Edges {
			in[e] = true
		}
		for _, c := range n.Children {
			if c.K != n.K+1 {
				t.Fatalf("child level %d under parent level %d", c.K, n.K)
			}
			for _, e := range c.Edges {
				if !in[e] {
					t.Fatalf("child edge %v not in parent", e)
				}
			}
			check(c)
		}
	}
	total := 0
	for _, r := range d.Hierarchy() {
		check(r)
		total += r.Size()
	}
	// Roots partition the κ ≥ 1 edges.
	want := 0
	for _, k := range d.Kappa {
		if k >= 1 {
			want++
		}
	}
	if total != want {
		t.Fatalf("roots cover %d edges, want %d", total, want)
	}
}

func TestHierarchyTriangleFree(t *testing.T) {
	g := graph.FromPairs(1, 2, 2, 3, 3, 4)
	if got := Decompose(g).Hierarchy(); got != nil {
		t.Fatalf("triangle-free hierarchy = %v, want nil", got)
	}
}
