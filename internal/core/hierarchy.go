package core

import (
	"slices"

	"trikcore/internal/graph"
)

// HierarchyNode is one community in the nested Triangle K-Core hierarchy:
// a triangle-connected component of the κ ≥ K subgraph. Children are the
// κ ≥ K+1 components nested inside it — denser sub-communities. The
// hierarchy is the navigation structure behind the paper's visual
// analytics: drilling from a broad community into its densest clique-like
// kernels follows parent→child links.
type HierarchyNode struct {
	// K is the Triangle K-Core level of this community.
	K int32
	// Edges are the component's edges (sorted).
	Edges []graph.Edge
	// Children are the level-K+1 communities nested in this one, ordered
	// by first edge.
	Children []*HierarchyNode
}

// Vertices returns the distinct vertices of the node's edges, sorted.
func (n *HierarchyNode) Vertices() []graph.Vertex {
	seen := make(map[graph.Vertex]bool, 2*len(n.Edges))
	for _, e := range n.Edges {
		seen[e.U] = true
		seen[e.V] = true
	}
	out := make([]graph.Vertex, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// Size returns the number of edges in the community.
func (n *HierarchyNode) Size() int { return len(n.Edges) }

// Leaves returns the densest communities under n (nodes with no
// children), in depth-first order.
func (n *HierarchyNode) Leaves() []*HierarchyNode {
	if len(n.Children) == 0 {
		return []*HierarchyNode{n}
	}
	var out []*HierarchyNode
	for _, c := range n.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Hierarchy builds the nested community forest of the decomposition: the
// roots are the triangle-connected components at level 1, and each node's
// children are the components at the next level contained within it.
// Edges in no triangle (κ = 0) appear nowhere in the forest.
//
// The construction runs Communities once per occupied κ level, so it
// costs O(MaxKappa · |Tri|) in the worst case — fine for the
// visualization-sized graphs it exists for.
func (d *Decomposition) Hierarchy() []*HierarchyNode {
	if d.MaxKappa == 0 {
		return nil
	}
	// Build communities level by level and nest by membership of the
	// first edge (a level-k+1 component is triangle-connected within
	// κ ≥ k too, so it lies inside exactly one level-k component).
	var roots []*HierarchyNode
	prev := map[graph.Edge]*HierarchyNode{} // first-level lookup: edge -> deepest node at previous level
	for k := int32(1); k <= d.MaxKappa; k++ {
		comms := d.Communities(k)
		cur := make(map[graph.Edge]*HierarchyNode)
		for _, edges := range comms {
			node := &HierarchyNode{K: k, Edges: edges}
			for _, e := range edges {
				cur[e] = node
			}
			if k == 1 {
				roots = append(roots, node)
				continue
			}
			parent := prev[edges[0]]
			if parent == nil {
				// Cannot happen for a correct decomposition; keep the
				// node reachable rather than dropping it.
				roots = append(roots, node)
				continue
			}
			parent.Children = append(parent.Children, node)
		}
		prev = cur
	}
	return roots
}
