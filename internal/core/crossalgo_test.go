package core

import (
	"testing"
	"testing/quick"

	cliquepkg "trikcore/internal/clique"
	"trikcore/internal/graph"
	"trikcore/internal/kcore"
)

// TestKappaBoundedByVertexCore checks the structural relationship between
// the two decompositions: an edge of a Triangle K-Core with number k has
// both endpoints with degree ≥ k+1 inside that subgraph, so each
// endpoint's vertex K-Core number is at least k+1. Hence
// κ(e) ≤ min(core(u), core(v)) − 1 whenever κ(e) ≥ 1.
func TestKappaBoundedByVertexCore(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(25, 0.3, seed)
		d := Decompose(g)
		vc := kcore.Decompose(g).Core
		for i, k := range d.Kappa {
			if k < 1 {
				continue
			}
			e := d.S.EdgeAt(int32(i))
			min := vc[e.U]
			if vc[e.V] < min {
				min = vc[e.V]
			}
			if int(k) > min-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxCliqueSandwich checks the two-sided relationship with cliques:
// ω(e) − 2 ≤ κ(e) (a clique containing e forces support within it), and
// the graph's maximum clique order ω satisfies ω ≤ MaxKappa + 2.
func TestMaxCliqueSandwich(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(16, 0.45, seed)
		d := Decompose(g)
		// Per-edge lower bound.
		for _, e := range g.Edges() {
			omega := cliquepkg.CoCliqueSize(g, e)
			k, _ := d.KappaOf(e)
			if int32(omega)-2 > k {
				return false
			}
		}
		// Global upper bound.
		maxClique := cliquepkg.MaxSize(g, 0)
		return maxClique <= int(d.MaxKappa)+2 || g.NumEdges() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestKappaMonotoneUnderEdgeAddition checks monotonicity: adding an edge
// never decreases any existing edge's κ.
func TestKappaMonotoneUnderEdgeAddition(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(15, 0.3, seed)
		before := Decompose(g).EdgeKappas()
		// Add the first absent pair.
		done := false
		for u := graph.Vertex(0); u < 15 && !done; u++ {
			for v := u + 1; v < 15 && !done; v++ {
				if !g.HasEdge(u, v) {
					g.AddEdge(u, v)
					done = true
				}
			}
		}
		after := Decompose(g).EdgeKappas()
		for e, k := range before {
			if after[e] < k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
