package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"trikcore/internal/bucket"
)

// EdgeView is the read-only graph surface the decomposition kernels
// consume: dense edge ids 0..NumEdges-1 with dense endpoint positions
// and a once-per-triangle oriented listing. *graph.Static satisfies it
// directly; the out-of-core decomposition drives the same kernels with
// partition-restricted views, which is why the kernels take the
// interface rather than the concrete view.
type EdgeView interface {
	// NumEdges returns the number of dense edge ids.
	NumEdges() int
	// Endpoints returns the dense endpoints (u < v) of edge i.
	Endpoints(i int32) (int32, int32)
	// ForEachOrientedTriangle calls fn once per triangle whose two
	// lowest-ranked vertices are the endpoints of edge i, passing the
	// dense ids of the triangle's other two edges. Across all edges the
	// listing covers every triangle exactly once.
	ForEachOrientedTriangle(i int32, fn func(e1, e2 int32) bool)
}

// LiveView is the shrinking adjacency structure the peel phase consumes:
// triangles over only still-live edges, with removal as edges peel.
// *graph.LiveAdj satisfies it.
type LiveView interface {
	// RemoveEdge removes edge i from the live structure.
	RemoveEdge(i int32)
	// ForEachTriangleEdge calls fn for each triangle {u, v, w} whose
	// edges are all live, passing the third vertex and the dense ids of
	// edges {u, w} and {v, w}.
	ForEachTriangleEdge(u, v int32, fn func(w, e1, e2 int32) bool)
}

// PeelResult is the raw output of the peel kernel, indexed by dense
// edge id like the view it ran on.
type PeelResult struct {
	// Kappa[i] is κ(edge i).
	Kappa []int32
	// Order lists edge ids in processing order; OrderOf is its inverse.
	Order, OrderOf []int32
	// MaxKappa is the largest κ value.
	MaxKappa int32
}

// Peel runs steps 7–18 of Algorithm 1 against the views: bucket edges
// by the κ̃ upper bound in support, repeatedly freeze the minimum
// (its bound is exact, Claim 2) and decrement the bounds of the other
// two edges of each still-live triangle through it, guarded by the
// Theorem 1 comparison. The support slice is not mutated.
func Peel(ev EdgeView, la LiveView, support []int32) PeelResult {
	m := ev.NumEdges()
	r := PeelResult{
		Kappa:   make([]int32, m),
		Order:   make([]int32, 0, m),
		OrderOf: make([]int32, m),
	}
	q := bucket.New(support)
	for {
		et, kt, ok := q.PopMin()
		if !ok {
			break
		}
		r.Kappa[et] = kt
		r.OrderOf[et] = int32(len(r.Order))
		r.Order = append(r.Order, et)
		if kt > r.MaxKappa {
			r.MaxKappa = kt
		}
		u, v := ev.Endpoints(et)
		la.RemoveEdge(et)
		la.ForEachTriangleEdge(u, v, func(w, e1, e2 int32) bool {
			// Step 13: only bounds strictly above κ(e_t) shrink; smaller
			// or equal bounds already account for this triangle's loss.
			if q.Val(e1) > kt {
				q.Dec(e1)
			}
			if q.Val(e2) > kt {
				q.Dec(e2)
			}
			return true
		})
	}
	return r
}

// supportBlock is the edge-block granularity of the work-stealing support
// computation. Blocks are handed out through an atomic counter rather than
// pre-chunked ranges: on power-law graphs the support cost of an edge is
// proportional to its endpoint degrees, so static chunking strands the
// workers that drew low-degree ranges while a hub-heavy range runs alone.
const supportBlock = 512

// ComputeSupportView returns the triangle support of every edge of ev
// (the κ̃ initialization of Algorithm 1, steps 1–5). It lists each
// triangle exactly once through the oriented kernel and credits all
// three of its edges, rather than intersecting full adjacency rows per
// edge — a 3× reduction in triangle visits plus oriented rows bounded
// by O(√M). With parallelism above one, workers steal fixed-size edge
// blocks from a shared atomic counter (static chunking strands workers
// on power-law degree skew) and publish credits with atomic adds.
func ComputeSupportView(ev EdgeView, parallelism int) []int32 {
	m := ev.NumEdges()
	support := make([]int32, m)
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > (m+supportBlock-1)/supportBlock {
		workers = (m + supportBlock - 1) / supportBlock
	}
	if workers <= 1 {
		for i := int32(0); i < int32(m); i++ {
			ev.ForEachOrientedTriangle(i, func(e1, e2 int32) bool {
				support[i]++
				support[e1]++
				support[e2]++
				return true
			})
		}
		return support
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int32(next.Add(supportBlock)) - supportBlock
				if lo >= int32(m) {
					return
				}
				hi := lo + supportBlock
				if hi > int32(m) {
					hi = int32(m)
				}
				for i := lo; i < hi; i++ {
					ev.ForEachOrientedTriangle(i, func(e1, e2 int32) bool {
						atomic.AddInt32(&support[i], 1)
						atomic.AddInt32(&support[e1], 1)
						atomic.AddInt32(&support[e2], 1)
						return true
					})
				}
			}
		}()
	}
	wg.Wait()
	return support
}
