package bucket

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPopMinSortsInitialValues(t *testing.T) {
	q := New([]int32{3, 1, 2, 1, 0})
	var got []int32
	for {
		_, v, ok := q.PopMin()
		if !ok {
			break
		}
		got = append(got, v)
	}
	want := []int32{0, 1, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after draining", q.Len())
	}
}

func TestDecMovesItemEarlier(t *testing.T) {
	q := New([]int32{5, 3})
	q.Dec(0)
	q.Dec(0)
	q.Dec(0) // item 0 now at 2
	item, v, ok := q.PopMin()
	if !ok || item != 0 || v != 2 {
		t.Fatalf("PopMin = (%d, %d, %v), want (0, 2, true)", item, v, ok)
	}
	if q.Val(0) != 2 || !q.Popped(0) || q.Popped(1) {
		t.Fatal("Val/Popped bookkeeping wrong")
	}
}

func TestDecPanics(t *testing.T) {
	t.Run("popped item", func(t *testing.T) {
		q := New([]int32{0, 5})
		q.PopMin()
		defer func() {
			if recover() == nil {
				t.Fatal("Dec on popped item did not panic")
			}
		}()
		q.Dec(0)
	})
	t.Run("below zero", func(t *testing.T) {
		q := New([]int32{0})
		defer func() {
			if recover() == nil {
				t.Fatal("Dec below zero did not panic")
			}
		}()
		q.Dec(0)
	})
	t.Run("negative build", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("New with negative priority did not panic")
			}
		}()
		New([]int32{-1})
	})
}

func TestEmptyQueue(t *testing.T) {
	q := New(nil)
	if _, _, ok := q.PopMin(); ok {
		t.Fatal("PopMin on empty queue returned ok")
	}
}

// TestQuickAgainstNaive simulates a peeling workload: repeatedly pop the
// minimum, then decrement a random subset of items whose value exceeds the
// popped value (mirroring the guard in peeling algorithms), and checks the
// queue agrees with a naive O(n) implementation throughout.
func TestQuickAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		vals := make([]int32, n)
		for i := range vals {
			vals[i] = int32(rng.Intn(12))
		}
		q := New(vals)
		naive := append([]int32(nil), vals...)
		alive := make([]bool, n)
		for i := range alive {
			alive[i] = true
		}
		for step := 0; step < n; step++ {
			item, v, ok := q.PopMin()
			if !ok {
				return false
			}
			// Naive min check.
			min := int32(1 << 30)
			for i, a := range alive {
				if a && naive[i] < min {
					min = naive[i]
				}
			}
			if v != min || naive[item] != v || !alive[item] {
				return false
			}
			alive[item] = false
			// Random guarded decrements.
			for i := 0; i < n; i++ {
				j := int32(rng.Intn(n))
				if alive[j] && naive[j] > v && rng.Intn(2) == 0 {
					q.Dec(j)
					naive[j]--
				}
			}
			// Values must stay in sync.
			for i := int32(0); i < int32(n); i++ {
				if q.Val(i) != naive[i] {
					return false
				}
			}
		}
		_, _, ok := q.PopMin()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
