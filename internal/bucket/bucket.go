// Package bucket implements the monotone bucket priority queue used by
// peeling algorithms (vertex k-core and triangle k-core decomposition).
//
// The queue holds items 0..n-1 with non-negative integer priorities. It is
// built once with counting sort in O(n + maxVal) time and supports two
// operations, both O(1): PopMin, which removes an item of minimum priority,
// and Dec, which decreases an un-popped item's priority by one. This is the
// classic array layout of Batagelj & Zaveršnik's O(|E|) k-core algorithm,
// which the paper cites as reference [21] and reuses in Algorithm 1
// ("bucket sort can be used as an optimization step here").
//
// The structure relies on the peeling invariant: Dec is only ever called on
// items whose priority is strictly greater than the priority of the most
// recently popped item. Peeling algorithms satisfy this by construction
// (they guard the decrement with a comparison, as in step 13 of
// Algorithm 1).
package bucket

import "fmt"

// Queue is a monotone bucket priority queue over items 0..n-1.
type Queue struct {
	vals     []int32 // current priority of each item
	arr      []int32 // items ordered by priority (mutated in place)
	pos      []int32 // pos[item] = index of item in arr
	binStart []int32 // binStart[v] = index in arr of the first item with priority v
	cur      int32   // next position in arr to pop
	popped   []bool  // popped[item] reports whether the item left the queue
}

// New builds a queue over items 0..len(vals)-1 with the given initial
// priorities. It panics on negative priorities.
func New(vals []int32) *Queue {
	n := int32(len(vals))
	maxVal := int32(0)
	for i, v := range vals {
		if v < 0 {
			panic(fmt.Sprintf("bucket: negative priority %d for item %d", v, i))
		}
		if v > maxVal {
			maxVal = v
		}
	}
	q := &Queue{
		vals:     append([]int32(nil), vals...),
		arr:      make([]int32, n),
		pos:      make([]int32, n),
		binStart: make([]int32, maxVal+2),
		popped:   make([]bool, n),
	}
	// Counting sort: count items per priority, then prefix-sum into bin
	// start offsets.
	counts := make([]int32, maxVal+2)
	for _, v := range vals {
		counts[v]++
	}
	start := int32(0)
	for v := int32(0); v <= maxVal+1; v++ {
		q.binStart[v] = start
		if v <= maxVal {
			start += counts[v]
		}
	}
	fill := append([]int32(nil), q.binStart...)
	for i := int32(0); i < n; i++ {
		v := vals[i]
		q.arr[fill[v]] = i
		q.pos[i] = fill[v]
		fill[v]++
	}
	return q
}

// Len returns the number of items remaining in the queue.
func (q *Queue) Len() int { return len(q.arr) - int(q.cur) }

// Val returns the current priority of item i (valid for popped items too:
// it is the priority the item had when popped).
func (q *Queue) Val(i int32) int32 { return q.vals[i] }

// Popped reports whether item i has been removed by PopMin.
func (q *Queue) Popped(i int32) bool { return q.popped[i] }

// PopMin removes and returns an item with minimum priority. The second
// result is its priority; ok is false when the queue is empty.
func (q *Queue) PopMin() (item, val int32, ok bool) {
	if int(q.cur) >= len(q.arr) {
		return 0, 0, false
	}
	item = q.arr[q.cur]
	q.cur++
	q.popped[item] = true
	return item, q.vals[item], true
}

// Dec decreases the priority of item i by one, in O(1). It panics if the
// item has been popped, if its priority is already zero, or if the
// monotonicity invariant is violated (its priority is not strictly greater
// than that of the last popped item).
func (q *Queue) Dec(i int32) {
	if q.popped[i] {
		panic(fmt.Sprintf("bucket: Dec on popped item %d", i))
	}
	v := q.vals[i]
	if v == 0 {
		panic(fmt.Sprintf("bucket: Dec below zero on item %d", i))
	}
	// Move i to the front slot of its bin, then shrink the bin from the
	// front so that the slot becomes the back of bin v-1.
	front := q.binStart[v]
	if front < q.cur {
		// All earlier slots are popped; the effective bin front is cur.
		// This happens when bins below v have been fully consumed.
		front = q.cur
		q.binStart[v] = front
	}
	j := q.arr[front]
	pi := q.pos[i]
	q.arr[front], q.arr[pi] = i, j
	q.pos[i], q.pos[j] = front, pi
	q.binStart[v]++
	q.vals[i] = v - 1
}
