package expt

import (
	"fmt"
	"math/rand"

	"trikcore/internal/core"
	"trikcore/internal/csvbaseline"
	"trikcore/internal/dataset"
	"trikcore/internal/dngraph"
	"trikcore/internal/dynamic"
	"trikcore/internal/graph"
	"trikcore/internal/stats"
	"trikcore/internal/table"
)

// TableI reproduces the dataset inventory (Table I): every dataset's
// paper size next to the stand-in actually built at the configured scale.
func TableI(cfg Config) (*table.Table, error) {
	cfg = cfg.normalized()
	t := &table.Table{
		Title:  "Table I: Data sets",
		Header: []string{"Graph Dataset", "Paper |V|", "Paper |E|", "Stand-in |V|", "Stand-in |E|", "Scale", "Generator"},
	}
	for _, d := range dataset.All() {
		cfg.logf("tableI: building %s", d.Name)
		g := cfg.instance(d)
		t.AddRow(d.Name, d.PaperV, d.PaperE, g.NumVertices(), g.NumEdges(),
			fmt.Sprintf("%.4g", d.Scale*cfg.Scale), d.Description)
	}
	t.AddNote("stand-ins are synthetic (see DESIGN.md §3.1); Flickr and LiveJournal are built at reduced scale")
	return t, nil
}

// TableII reproduces the execution-time comparison (Table II): full
// Triangle K-Core decomposition versus the CSV baseline and the DN-Graph
// variants on every dataset. Baselines are skipped above their edge
// limits, mirroring the paper (CSV and TriDN could not run on the three
// largest datasets; BiTriDN took too long).
func TableII(cfg Config) (*table.Table, error) {
	cfg = cfg.normalized()
	t := &table.Table{
		Title: "Table II: execution time (seconds)",
		Header: []string{"Graph", "|V|", "|E|", "TriangleKCore", "CSV", "TriDN", "BiTriDN",
			"TriDN iters"},
	}
	for _, d := range dataset.All() {
		cfg.logf("tableII: %s", d.Name)
		g := cfg.instance(d)
		m := g.NumEdges()

		var dec *core.Decomposition
		triTime := stats.Timed(func() { dec = core.Decompose(g) })
		_ = dec

		csvCell, dnCell, biCell, iterCell := "-", "-", "-", "-"
		if m <= cfg.CSVEdgeLimit {
			csvTime := stats.Timed(func() { csvbaseline.CoCliqueSizes(g) })
			csvCell = stats.FormatSeconds(csvTime.Seconds())
		}
		if m <= cfg.DNEdgeLimit {
			var r *dngraph.Result
			dnTime := stats.Timed(func() { r = dngraph.TriDN(g, dngraph.Options{}) })
			dnCell = stats.FormatSeconds(dnTime.Seconds())
			iterCell = fmt.Sprintf("%d", r.Iterations)
			biTime := stats.Timed(func() { dngraph.BiTriDN(g, dngraph.Options{}) })
			biCell = stats.FormatSeconds(biTime.Seconds())
		}
		t.AddRow(d.Name, g.NumVertices(), m,
			stats.FormatSeconds(triTime.Seconds()), csvCell, dnCell, biCell, iterCell)
	}
	t.AddNote("'-' marks baselines skipped above their size limits (CSV > %d edges, DN-Graph > %d edges), as in the paper", cfg.CSVEdgeLimit, cfg.DNEdgeLimit)
	return t, nil
}

// TableIII reproduces the dynamic-update experiment (Table III): on the
// five largest datasets, randomly add and delete 1% of edges and compare
// the incremental update time (Algorithm 2) against re-computation (the
// peeling phase of Algorithm 1, steps 8–18, exactly as the paper
// accounts it). Times are averaged over cfg.Runs runs.
func TableIII(cfg Config) (*table.Table, error) {
	cfg = cfg.normalized()
	t := &table.Table{
		Title: "Table III: re-compute vs incremental update (seconds)",
		Header: []string{"Graph", "Total Edges", "Edges Changed", "Re-Compute", "Update",
			"Speedup"},
	}
	for _, d := range dataset.LargestFive() {
		cfg.logf("tableIII: %s", d.Name)
		g := cfg.instance(d)
		m := g.NumEdges()
		changed := m / 100
		if changed < 2 {
			changed = 2
		}
		changed -= changed % 2 // half deleted, half added

		var recompute, update stats.Sample
		for run := 0; run < cfg.Runs; run++ {
			rng := rand.New(rand.NewSource(int64(7700 + run)))
			adds, dels := churnPlan(g, changed, rng)

			// Incremental update on an engine holding the base graph,
			// applied as one batch (the deployment shape of the dynamic
			// path: deletions before insertions, shared scratch).
			ops := make([]dynamic.EdgeOp, 0, len(dels)+len(adds))
			for _, e := range dels {
				ops = append(ops, dynamic.EdgeOp{U: e.U, V: e.V, Del: true})
			}
			for _, e := range adds {
				ops = append(ops, dynamic.EdgeOp{U: e.U, V: e.V})
			}
			en := dynamic.NewEngine(g)
			update.AddDuration(stats.Timed(func() {
				en.ApplyBatch(ops)
			}))

			// Re-compute on the changed graph: freeze and count support
			// outside the clock, then time the peeling phase (the
			// paper's steps 8–18 accounting).
			s := graph.FreezeStatic(en.Graph())
			support := core.ComputeSupport(s, 0)
			recompute.AddDuration(stats.Timed(func() {
				core.DecomposeWithSupport(s, support)
			}))
		}
		t.AddRow(d.Name, m, changed,
			stats.FormatSeconds(recompute.Mean()),
			stats.FormatSeconds(update.Mean()),
			stats.Speedup(recompute.Mean(), update.Mean()))
	}
	t.AddNote("1%% of edges changed (half deleted, half added); averaged over %d runs", cfg.Runs)
	t.AddNote("Re-Compute times the peeling phase of Algorithm 1 (steps 8-18), matching the paper's accounting")
	return t, nil
}

// churnPlan picks changed/2 existing edges to delete and changed/2 fresh
// edges to add (at least one of each), deterministically per rng.
func churnPlan(g *graph.Graph, changed int, rng *rand.Rand) (adds, dels []graph.Edge) {
	half := changed / 2
	if half < 1 {
		half = 1
	}
	edges := g.Edges()
	perm := rng.Perm(len(edges))
	for i := 0; i < half && i < len(perm); i++ {
		dels = append(dels, edges[perm[i]])
	}
	verts := g.Vertices()
	n := len(verts)
	seen := make(map[graph.Edge]bool, half)
	for len(adds) < half {
		u := verts[rng.Intn(n)]
		v := verts[rng.Intn(n)]
		if u == v {
			continue
		}
		e := graph.NewEdge(u, v)
		if g.HasEdgeE(e) || seen[e] {
			continue
		}
		seen[e] = true
		adds = append(adds, e)
	}
	return adds, dels
}
