package expt

import (
	"fmt"

	"trikcore/internal/clique"
	"trikcore/internal/core"
	"trikcore/internal/csvbaseline"
	"trikcore/internal/dataset"
	"trikcore/internal/gen"
	"trikcore/internal/graph"
	"trikcore/internal/plot"
	"trikcore/internal/stats"
	"trikcore/internal/table"
	"trikcore/internal/template"
)

// Figure6 reproduces the qualitative CSV-vs-TriangleKCore plot comparison
// (Figure 6): for each small dataset, build both density plots and
// quantify their per-vertex height agreement. The paper's claim is that
// the plots are near-identical up to occasional phase shifts, at a
// fraction of CSV's cost.
func Figure6(cfg Config) (*table.Table, error) {
	cfg = cfg.normalized()
	t := &table.Table{
		Title: "Figure 6: CSV vs Triangle K-Core density plots",
		Header: []string{"Graph", "|V|", "exact agreement", "mean |Δh|", "max |Δh|",
			"TriKCore s", "CSV s"},
	}
	for _, d := range dataset.FigureSix() {
		cfg.logf("figure6: %s", d.Name)
		g := cfg.instance(d)

		var dec *core.Decomposition
		triTime := stats.Timed(func() { dec = core.Decompose(g) })
		triSeries := plot.Density(g, plot.FromDecomposition(dec))

		var csvVals map[graph.Edge]int
		csvTime := stats.Timed(func() { csvVals = csvbaseline.CoCliqueSizes(g) })
		csvSeries := plot.Density(g, plot.EdgeValues(csvVals))

		cmp := plot.Compare(triSeries, csvSeries)
		t.AddRow(d.Name, g.NumVertices(),
			fmt.Sprintf("%.3f", cmp.ExactAgreement),
			fmt.Sprintf("%.3f", cmp.MeanAbsDiff),
			cmp.MaxAbsDiff,
			stats.FormatSeconds(triTime.Seconds()),
			stats.FormatSeconds(csvTime.Seconds()))

		if err := cfg.savePlot(fmt.Sprintf("figure6_%s_trikcore.svg", d.Name),
			plot.RenderSVG(triSeries, plot.SVGOptions{Title: d.Name + " (Triangle K-Core)"})); err != nil {
			return nil, err
		}
		if err := cfg.savePlot(fmt.Sprintf("figure6_%s_csv.svg", d.Name),
			plot.RenderSVG(csvSeries, plot.SVGOptions{Title: d.Name + " (CSV)"})); err != nil {
			return nil, err
		}
	}
	t.AddNote("agreement is per-vertex equality of plotted heights; κ+2 upper-bounds the exact co-clique size, so Δh ≥ 0 everywhere")
	return t, nil
}

// Figure7 reproduces the PPI case study (Figure 7): the density plot of
// the PPI stand-in exposes three planted near-cliques as its top peaks;
// clique 2 is an exact 10-clique, clique 3 has 10 vertices but plots one
// lower because one edge is missing.
func Figure7(cfg Config) (*table.Table, error) {
	cfg = cfg.normalized()
	cfg.logf("figure7: building PPI study")
	study := dataset.PPIStudy()
	g := study.G
	dec := core.Decompose(g)
	series := plot.Density(g, plot.FromDecomposition(dec))
	peaks := series.TopPeaks(3, 5)

	t := &table.Table{
		Title:  "Figure 7: top clique-like peaks in the PPI plot",
		Header: []string{"Peak", "height", "width", "matches planted", "overlap", "exact clique?"},
	}
	for i, pk := range peaks {
		best, bestOverlap := -1, 0
		for j, planted := range study.Planted {
			if o := overlap(pk.Vertices, planted); o > bestOverlap {
				best, bestOverlap = j, o
			}
		}
		for j, planted := range study.BridgeCliques {
			if o := overlap(pk.Vertices, planted); o > bestOverlap {
				best, bestOverlap = 3+j, o
			}
		}
		label := "-"
		if best >= 0 {
			if best < 3 {
				label = fmt.Sprintf("planted clique %d", best+1)
			} else {
				label = fmt.Sprintf("bridge clique %d", best-2)
			}
		}
		exact := graph.IsClique(g, pk.Vertices)
		t.AddRow(fmt.Sprintf("%d", i+1), pk.Height, pk.Width(), label, bestOverlap, exact)
	}
	miss := study.MissingEdge
	k3, _ := dec.KappaOf(graph.NewEdge(study.Planted[2][2], study.Planted[2][3]))
	k2, _ := dec.KappaOf(graph.NewEdge(study.Planted[1][0], study.Planted[1][1]))
	t.AddNote("planted clique 2 is an exact 10-clique (κ+2 = %d on its edges)", k2+2)
	t.AddNote("planted structure 3 misses edge %v, so its edges carry κ+2 = %d — it plots one below its vertex count, as in the paper", miss, k3+2)
	if err := cfg.savePlot("figure7_ppi.svg",
		plot.RenderSVG(series, plot.SVGOptions{Title: "PPI density plot"})); err != nil {
		return nil, err
	}
	// Verify clique 2 is exact with an independent maximum-clique search
	// over its induced subgraph (the paper confirms it is a real clique).
	sub := graph.InducedSubgraph(g, study.Planted[1])
	if got := clique.MaxSize(sub, 0); got != len(study.Planted[1]) {
		t.AddNote("WARNING: planted clique 2 failed independent verification (max clique %d)", got)
	}
	return t, nil
}

// Figure8 reproduces the Wiki dual-view case study (Figure 8): between
// two snapshots, the changed-clique plot's top structures are located
// back in the first snapshot's plot, revealing a clique-growth event and
// two clique-merge events.
func Figure8(cfg Config) (*table.Table, error) {
	cfg = cfg.normalized()
	// The full Wiki stand-in (1M edges) is decomposed twice here; scale
	// trims it for smoke runs.
	fraction := cfg.Scale
	churn := int(2000 * cfg.Scale)
	cfg.logf("figure8: building wiki snapshots at fraction %.3g", fraction)
	study := dataset.WikiStudy(fraction, churn)
	dv := plot.BuildDualView(study.Snap1, study.Snap2, plot.DualViewOptions{TopK: 3, MinWidth: 4})

	t := &table.Table{
		Title:  "Figure 8: dual-view markers (Wiki)",
		Header: []string{"Marker", "after peak", "before regions", "new vertices", "matches planted event"},
	}
	events := []struct {
		name  string
		verts []graph.Vertex
	}{
		{"growth (11-clique)", study.Growth.Result},
		{"merge 1", study.Merges[0].Result},
		{"merge 2", study.Merges[1].Result},
	}
	for _, mk := range dv.Markers {
		bestName, bestOverlap := "-", 0
		for _, ev := range events {
			if o := overlap(mk.Peak.Vertices, ev.verts); o > bestOverlap {
				bestName, bestOverlap = ev.name, o
			}
		}
		t.AddRow(mk.Label, mk.Peak.String(),
			fmt.Sprintf("%v", mk.BeforeRegions()),
			len(mk.NewVertices),
			fmt.Sprintf("%s (overlap %d)", bestName, bestOverlap))
	}
	t.AddNote("planted events: joiner %d grows a 10-clique to 11; two 3+3 merges", study.Growth.Joiner)
	if err := cfg.savePlot("figure8_before.svg", plot.RenderSVG(dv.Before,
		plot.SVGOptions{Title: "Wiki snapshot 1 (all cliques)", Markers: dv.BeforeMarkersForSVG()})); err != nil {
		return nil, err
	}
	if err := cfg.savePlot("figure8_after.svg", plot.RenderSVG(dv.After,
		plot.SVGOptions{Title: "Wiki snapshot 2 (changed cliques)", Markers: dv.MarkersForSVG()})); err != nil {
		return nil, err
	}
	return t, nil
}

// figureTemplate is the shared shape of Figures 9–11: detect a template
// pattern between two collaboration years and report the densest pattern
// cliques against the planted ground truth.
func figureTemplate(cfg Config, figure, patternName string, spec func(template.Novelty) template.Spec,
	pick func(gen.CollabPair) ([]graph.Vertex, string)) (*table.Table, error) {
	cfg = cfg.normalized()
	cfg.logf("%s: building collaboration snapshots", figure)
	study := dataset.CollabStudy(cfg.Scale)
	planted, plantedLabel := pick(study)
	nov := template.Evolving(study.Old, study.New)
	res := template.Detect(study.New, spec(nov))

	t := &table.Table{
		Title:  fmt.Sprintf("%s: %s cliques (DBLP)", figure, patternName),
		Header: []string{"Peak", "height", "width", "overlap with planted", "planted found"},
	}
	peaks := res.TopCliques(3, 3)
	foundPlanted := false
	for i, pk := range peaks {
		o := overlap(pk.Vertices, planted)
		if o == len(planted) && pk.Height == len(planted) {
			foundPlanted = true
		}
		t.AddRow(fmt.Sprintf("%d", i+1), pk.Height, pk.Width(), o, o == len(planted))
	}
	t.AddNote("planted: %s on %d authors %v", plantedLabel, len(planted), sortedCopy(planted))
	t.AddNote("characteristic triangles: %d, possible triangles: %d, G_spe edges: %d",
		len(res.Characteristic), len(res.Possible), res.Special.NumEdges())
	if !foundPlanted {
		t.AddNote("WARNING: planted %s clique not the top peak", patternName)
	}
	if err := cfg.savePlot(fmt.Sprintf("%s_%s.svg", figure, res.Spec.Name),
		plot.RenderSVG(res.Series, plot.SVGOptions{Title: t.Title})); err != nil {
		return nil, err
	}
	return t, nil
}

// Figure9 reproduces the New Form clique study (Figure 9).
func Figure9(cfg Config) (*table.Table, error) {
	return figureTemplate(cfg, "figure9", "New Form", template.NewForm,
		func(p gen.CollabPair) ([]graph.Vertex, string) {
			return p.NewFormClique, "six authors collaborating for the first time"
		})
}

// Figure10 reproduces the Bridge clique study (Figure 10).
func Figure10(cfg Config) (*table.Table, error) {
	return figureTemplate(cfg, "figure10", "Bridge", template.Bridge,
		func(p gen.CollabPair) ([]graph.Vertex, string) {
			return p.BridgeClique, "two disconnected groups (4+2) merging"
		})
}

// Figure11 reproduces the New Join clique study (Figure 11).
func Figure11(cfg Config) (*table.Table, error) {
	return figureTemplate(cfg, "figure11", "New Join", template.NewJoin,
		func(p gen.CollabPair) ([]graph.Vertex, string) {
			return p.NewJoinClique, "three incumbents joined by six new authors"
		})
}

// Figure12 reproduces the static PPI Bridge clique study (Figure 12):
// with edges classified by complex membership, the Bridge template finds
// cliques spanning two protein complexes.
func Figure12(cfg Config) (*table.Table, error) {
	cfg = cfg.normalized()
	cfg.logf("figure12: building PPI study")
	study := dataset.PPIStudy()
	res := template.Detect(study.G, template.Bridge(template.InterComplex(study.Complex)))

	t := &table.Table{
		Title:  "Figure 12: Bridge cliques across protein complexes (PPI)",
		Header: []string{"Peak", "height", "width", "matches planted bridge", "overlap"},
	}
	for i, pk := range res.TopCliques(3, 3) {
		best, bestOverlap := -1, 0
		for j, b := range study.BridgeCliques {
			if o := overlap(pk.Vertices, b); o > bestOverlap {
				best, bestOverlap = j, o
			}
		}
		label := "-"
		if best >= 0 {
			label = fmt.Sprintf("bridge %d", best+1)
		}
		t.AddRow(fmt.Sprintf("%d", i+1), pk.Height, pk.Width(), label, bestOverlap)
	}
	o23 := overlap(study.BridgeCliques[1], study.BridgeCliques[2])
	t.AddNote("planted bridges span complex pairs; bridges 2 and 3 overlap on %d vertices (the paper's GLC7/RNA14 structure)", o23)
	if err := cfg.savePlot("figure12_ppi_bridge.svg",
		plot.RenderSVG(res.Series, plot.SVGOptions{Title: "PPI bridge cliques"})); err != nil {
		return nil, err
	}
	return t, nil
}
