package expt

import (
	"fmt"
	"math/rand"
	"slices"

	"trikcore/internal/core"
	"trikcore/internal/dataset"
	"trikcore/internal/dngraph"
	"trikcore/internal/dynamic"
	"trikcore/internal/extcore"
	"trikcore/internal/graph"
	"trikcore/internal/stats"
	"trikcore/internal/table"
)

// Extras returns experiments beyond the paper's artifacts: scaling and
// ablation studies of this implementation. They are reported separately
// from the reproduction tables.
func Extras() []Runner {
	return []Runner{
		{"extraSweep", "EXTRA: decomposition scaling across graph sizes", ExtraSweep},
		{"extraChurn", "EXTRA: update-vs-recompute crossover across churn rates", ExtraChurn},
		{"extraExternal", "EXTRA: out-of-core decomposition across memory budgets", ExtraExternal},
	}
}

// ExtraExternal sweeps the out-of-core peel's memory budget on the
// Astro fixture, charting the resident-memory / spill-traffic trade the
// partitioned schedule makes while asserting the κ output never moves.
func ExtraExternal(cfg Config) (*table.Table, error) {
	cfg = cfg.normalized()
	d, _ := dataset.ByName("Astro-Author")
	g := cfg.instance(d)
	s := graph.FreezeStatic(g)

	var want *core.Decomposition
	memTime := stats.Timed(func() { want = core.DecomposeStatic(s, core.Options{}) })

	t := &table.Table{
		Title:  "EXTRA: out-of-core decomposition budget sweep (Astro-Author)",
		Header: []string{"budget", "partitions", "sweeps", "spill MiB", "peak resident KiB", "time s", "vs in-memory"},
	}
	t.AddRow("unbounded", 1, 1, "0", fmt.Sprintf("%.0f", float64(4*s.NumEdges())/1024),
		stats.FormatSeconds(memTime.Seconds()), "=")
	for _, budget := range []int64{1 << 20, 256 << 10, 64 << 10} {
		cfg.logf("extraExternal: budget %d bytes", budget)
		var res *extcore.Result
		var err error
		extTime := stats.Timed(func() {
			res, err = extcore.Decompose(s, extcore.Options{MemBudget: budget})
		})
		if err != nil {
			return nil, err
		}
		if !slices.Equal(res.Kappa, want.Kappa) {
			return nil, fmt.Errorf("extraExternal: budget %d diverged from in-memory κ", budget)
		}
		t.AddRow(fmt.Sprintf("%d KiB", budget>>10), res.Stats.Partitions, res.Stats.Sweeps,
			fmt.Sprintf("%.2f", float64(res.Stats.SpillBytes)/(1<<20)),
			fmt.Sprintf("%.0f", float64(res.Stats.PeakResidentBytes)/1024),
			stats.FormatSeconds(extTime.Seconds()), "=")
	}
	t.AddNote("the unbounded row is the in-memory DecomposeStatic baseline; its peak column is the support array alone")
	t.AddNote("κ is verified byte-identical to the in-memory decomposition at every budget")
	return t, nil
}

// ExtraSweep measures how the decomposition and the TriDN baseline scale
// with graph size on one dataset family (Epinions-shaped), exposing the
// near-linear cost in |triangles| that the paper's complexity analysis
// promises.
func ExtraSweep(cfg Config) (*table.Table, error) {
	cfg = cfg.normalized()
	d, _ := dataset.ByName("Epinions")
	t := &table.Table{
		Title:  "EXTRA: scaling sweep (Epinions-shaped graphs)",
		Header: []string{"fraction", "|V|", "|E|", "triangles", "decompose s", "peel s", "TriDN s", "TriDN iters"},
	}
	for _, frac := range []float64{0.05, 0.1, 0.2, 0.4} {
		f := frac * cfg.Scale
		g := d.GenerateAt(f)
		cfg.logf("extraSweep: fraction %.3g (%d edges)", f, g.NumEdges())
		s := graph.FreezeStatic(g)
		tris := s.TriangleCount()

		decTime := stats.Timed(func() { core.Decompose(g) })
		support := core.ComputeSupport(s, 0)
		peelTime := stats.Timed(func() { core.DecomposeWithSupport(s, support) })

		dnCell, iterCell := "-", "-"
		if g.NumEdges() <= cfg.DNEdgeLimit {
			var r *dngraph.Result
			dnTime := stats.Timed(func() { r = dngraph.TriDN(g, dngraph.Options{}) })
			dnCell = stats.FormatSeconds(dnTime.Seconds())
			iterCell = fmt.Sprintf("%d", r.Iterations)
		}
		t.AddRow(fmt.Sprintf("%.3g", f), g.NumVertices(), g.NumEdges(), tris,
			stats.FormatSeconds(decTime.Seconds()),
			stats.FormatSeconds(peelTime.Seconds()), dnCell, iterCell)
	}
	t.AddNote("peel = steps 7-18 of Algorithm 1 only (support counting excluded)")
	return t, nil
}

// ExtraChurn sweeps the churn rate on one dataset to locate the
// crossover where re-computation beats incremental maintenance — the
// design-space question behind Table III.
func ExtraChurn(cfg Config) (*table.Table, error) {
	cfg = cfg.normalized()
	d, _ := dataset.ByName("Astro-Author")
	g := cfg.instance(d)
	t := &table.Table{
		Title:  "EXTRA: churn-rate sweep (Astro-Author)",
		Header: []string{"churn %", "edges changed", "per-edge s", "batched s", "re-compute s", "winner"},
	}
	for _, pct := range []float64{0.1, 0.5, 1, 5, 10} {
		changed := int(float64(g.NumEdges()) * pct / 100)
		if changed < 2 {
			changed = 2
		}
		changed -= changed % 2
		cfg.logf("extraChurn: %.2g%% (%d edges)", pct, changed)

		rng := rand.New(rand.NewSource(4242))
		adds, dels := churnPlan(g, changed, rng)
		ops := make([]dynamic.EdgeOp, 0, len(dels)+len(adds))
		for _, e := range dels {
			ops = append(ops, dynamic.EdgeOp{U: e.U, V: e.V, Del: true})
		}
		for _, e := range adds {
			ops = append(ops, dynamic.EdgeOp{U: e.U, V: e.V})
		}

		// Same ops through the per-edge and the batched entry points, each
		// on its own engine over the base graph.
		en := dynamic.NewEngine(g)
		updTime := stats.Timed(func() {
			for _, e := range dels {
				en.DeleteEdgeE(e)
			}
			for _, e := range adds {
				en.InsertEdgeE(e)
			}
		})
		enB := dynamic.NewEngine(g)
		batTime := stats.Timed(func() { enB.ApplyBatch(ops) })

		s := graph.FreezeStatic(en.Graph())
		support := core.ComputeSupport(s, 0)
		recTime := stats.Timed(func() { core.DecomposeWithSupport(s, support) })

		winner := "batched"
		if updTime < batTime && updTime < recTime {
			winner = "per-edge"
		} else if recTime < batTime {
			winner = "re-compute"
		}
		t.AddRow(fmt.Sprintf("%.2g", pct), changed,
			stats.FormatSeconds(updTime.Seconds()),
			stats.FormatSeconds(batTime.Seconds()),
			stats.FormatSeconds(recTime.Seconds()), winner)
	}
	t.AddNote("incremental updating wins at low churn and loses once a large fraction of the graph changes — the regime boundary Table III's 1%% sits well inside")
	t.AddNote("batched = the same ops through ApplyBatch on a fresh engine (dedup + shared scratch)")
	return t, nil
}
