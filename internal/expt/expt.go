// Package expt is the experiment harness: one runner per table and figure
// of the paper's evaluation section (Tables I–III, Figures 6–12). Each
// runner builds its workload from the dataset registry, executes the
// algorithms under test, and returns a table.Table whose rows mirror the
// paper's reporting. cmd/experiments and the repository-root benchmarks
// drive these runners.
package expt

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"

	"trikcore/internal/dataset"
	"trikcore/internal/graph"
	"trikcore/internal/table"
)

// Config controls experiment execution.
type Config struct {
	// Scale multiplies every dataset's stand-in size (1.0 reproduces the
	// Table I sizes; smaller values give quick smoke runs). Values are
	// clamped to (0, 1].
	Scale float64
	// Runs is the number of repetitions for timing experiments
	// (Table III averages over 5 runs in the paper).
	Runs int
	// PlotDir, when non-empty, receives SVG renderings of every figure.
	PlotDir string
	// Log receives progress lines (defaults to io.Discard).
	Log io.Writer
	// CSVEdgeLimit bounds the graphs on which the CSV baseline runs.
	// The paper could not run CSV or TriDN on its three largest datasets
	// (Wiki, Flickr, LiveJournal); the default limit of 950 000 edges
	// reproduces exactly that cut at full scale. Zero means 950 000.
	CSVEdgeLimit int
	// DNEdgeLimit bounds the graphs on which TriDN/BiTriDN run to
	// convergence. Zero means 950 000 (the same three-largest cut).
	DNEdgeLimit int
}

func (c Config) normalized() Config {
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = 1
	}
	if c.Runs <= 0 {
		c.Runs = 5
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	if c.CSVEdgeLimit == 0 {
		c.CSVEdgeLimit = 950_000
	}
	if c.DNEdgeLimit == 0 {
		c.DNEdgeLimit = 950_000
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	// Logging is best-effort: a failing log writer must not abort a long
	// experiment run, so the write error is deliberately dropped.
	_, err := fmt.Fprintf(c.Log, format+"\n", args...)
	_ = err
}

// instance builds a dataset at the configured scale (using the cached
// full-size graph when Scale == 1; callers must not mutate that one).
func (c Config) instance(d *dataset.Dataset) *graph.Graph {
	if c.Scale == 1 {
		return d.Graph()
	}
	return d.GenerateAt(c.Scale)
}

// savePlot writes an SVG document into PlotDir (no-op when unset).
func (c Config) savePlot(name, svg string) error {
	if c.PlotDir == "" {
		return nil
	}
	if err := os.MkdirAll(c.PlotDir, 0o755); err != nil {
		return fmt.Errorf("expt: %w", err)
	}
	path := filepath.Join(c.PlotDir, name)
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return fmt.Errorf("expt: %w", err)
	}
	c.logf("wrote %s", path)
	return nil
}

// Runner is a named experiment.
type Runner struct {
	// ID matches the paper artifact ("tableI", "figure7", ...).
	ID string
	// Caption describes what the paper artifact shows.
	Caption string
	// Run executes the experiment.
	Run func(Config) (*table.Table, error)
}

// Runners returns all experiments in paper order.
func Runners() []Runner {
	return []Runner{
		{"tableI", "Data sets", TableI},
		{"tableII", "Execution time: Triangle K-Core vs CSV vs TriDN vs BiTriDN", TableII},
		{"figure6", "Qualitative comparison between CSV and Triangle K-Core plots", Figure6},
		{"figure7", "Cliques in PPI dataset", Figure7},
		{"tableIII", "Update vs re-compute time under 1% edge churn", TableIII},
		{"figure8", "Dual view plots: Wiki case study", Figure8},
		{"figure9", "New Form cliques: DBLP study", Figure9},
		{"figure10", "Bridge cliques: DBLP study", Figure10},
		{"figure11", "New Join cliques: DBLP study", Figure11},
		{"figure12", "Static Bridge cliques: PPI case study", Figure12},
	}
}

// RunnerByID returns the runner with the given id, searching the paper
// artifacts first and then the extras.
func RunnerByID(id string) (Runner, bool) {
	for _, r := range append(Runners(), Extras()...) {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs returns all runner ids in paper order.
func IDs() []string {
	rs := Runners()
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

// overlap returns |a ∩ b| for vertex slices.
func overlap[T comparable](a, b []T) int {
	in := make(map[T]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	n := 0
	for _, x := range b {
		if in[x] {
			n++
		}
	}
	return n
}

// sortedCopy returns a sorted copy of xs.
func sortedCopy[T ~int32](xs []T) []T {
	out := append([]T(nil), xs...)
	slices.Sort(out)
	return out
}
