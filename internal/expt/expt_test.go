package expt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smokeCfg runs every experiment at a small fraction of the paper's
// dataset sizes so the full harness is exercised in seconds.
func smokeCfg(t *testing.T) Config {
	t.Helper()
	return Config{
		Scale:        0.02,
		Runs:         2,
		CSVEdgeLimit: 5_000,
		DNEdgeLimit:  25_000,
	}
}

func TestRunnersRegistry(t *testing.T) {
	rs := Runners()
	if len(rs) != 10 {
		t.Fatalf("%d runners, want 10", len(rs))
	}
	if rs[0].ID != "tableI" || rs[4].ID != "tableIII" || rs[9].ID != "figure12" {
		t.Fatalf("runner order wrong: %v", IDs())
	}
	if _, ok := RunnerByID("figure7"); !ok {
		t.Fatal("figure7 missing")
	}
	if _, ok := RunnerByID("nope"); ok {
		t.Fatal("unknown runner found")
	}
	for _, r := range rs {
		if r.Caption == "" {
			t.Fatalf("%s: empty caption", r.ID)
		}
	}
}

func TestTableISmoke(t *testing.T) {
	tab, err := TableI(smokeCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("Table I has %d rows", len(tab.Rows))
	}
	if !strings.Contains(tab.Text(), "LiveJournal") {
		t.Fatal("Table I text missing dataset")
	}
	if !strings.Contains(tab.Markdown(), "| Synthetic |") {
		t.Fatal("Table I markdown malformed")
	}
}

func TestTableIISmoke(t *testing.T) {
	tab, err := TableII(smokeCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("Table II has %d rows", len(tab.Rows))
	}
	// The small datasets must have CSV numbers; the large ones dashes.
	for _, row := range tab.Rows {
		if row[0] == "Synthetic" && row[4] == "-" {
			t.Fatal("CSV skipped on Synthetic")
		}
		if row[0] == "LiveJournal" && row[4] != "-" {
			t.Fatal("CSV ran on scaled LiveJournal despite the limit")
		}
	}
}

func TestTableIIISmoke(t *testing.T) {
	tab, err := TableIII(smokeCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("Table III has %d rows", len(tab.Rows))
	}
}

func TestFigure6Smoke(t *testing.T) {
	dir := t.TempDir()
	cfg := smokeCfg(t)
	cfg.PlotDir = dir
	tab, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Figure 6 has %d rows", len(tab.Rows))
	}
	svgs, _ := filepath.Glob(filepath.Join(dir, "figure6_*.svg"))
	if len(svgs) != 8 {
		t.Fatalf("Figure 6 wrote %d SVGs, want 8", len(svgs))
	}
	data, err := os.ReadFile(svgs[0])
	if err != nil || !strings.Contains(string(data), "<svg") {
		t.Fatal("SVG output malformed")
	}
}

func TestFigure7FullPPI(t *testing.T) {
	// Figure 7 always runs on the full PPI stand-in (15147 edges) — still
	// fast — and must find the planted structures as its top peaks.
	tab, err := Figure7(smokeCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("Figure 7 found %d peaks, want 3", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[3] == "-" {
			t.Fatalf("peak matched no planted structure: %v", row)
		}
	}
}

func TestFigure8Smoke(t *testing.T) {
	tab, err := Figure8(smokeCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("Figure 8 produced no markers")
	}
}

func TestFigures9to11Smoke(t *testing.T) {
	for _, tc := range []struct {
		name string
	}{{"figure9"}, {"figure10"}, {"figure11"}} {
		r, _ := RunnerByID(tc.name)
		tab, err := r.Run(smokeCfg(t))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: no peaks", tc.name)
		}
		// The planted clique must be found exactly (no WARNING note).
		for _, n := range tab.Notes {
			if strings.Contains(n, "WARNING") {
				t.Fatalf("%s: %s", tc.name, n)
			}
		}
	}
}

func TestFigure12FullPPI(t *testing.T) {
	tab, err := Figure12(smokeCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("Figure 12 found no bridge cliques")
	}
	matched := 0
	for _, row := range tab.Rows {
		if row[3] != "-" {
			matched++
		}
	}
	if matched == 0 {
		t.Fatal("no peak matched a planted bridge clique")
	}
}

func TestExtrasSmoke(t *testing.T) {
	if len(Extras()) != 3 {
		t.Fatalf("%d extras", len(Extras()))
	}
	for _, r := range Extras() {
		if _, ok := RunnerByID(r.ID); !ok {
			t.Fatalf("extra %s not resolvable by id", r.ID)
		}
		tab, err := r.Run(smokeCfg(t))
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", r.ID)
		}
	}
}
