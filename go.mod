module trikcore

go 1.22
